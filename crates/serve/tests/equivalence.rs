//! Event-driven vs legacy threaded engine equivalence: the same seeded
//! traffic must produce byte-identical results — equal order-independent
//! digests — and the same terminal accounting, whichever session layer
//! is serving. This is the safety net that lets the threaded engine be
//! removed after one release (ROADMAP).

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_serve::{run_chaos, run_load, ChaosConfig, LoadConfig, Server, ServerConfig};

fn spawn(threaded: bool) -> csqp_serve::ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threaded,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
    .spawn()
    .expect("spawn server")
}

#[test]
fn seeded_load_digests_are_identical_across_engines() {
    let event = spawn(false);
    let threaded = spawn(true);
    for seed in [7u64, 0xC59D] {
        let cfg = |addr: String| LoadConfig {
            addr,
            clients: 4,
            queries_per_client: Some(4),
            seed,
            ..LoadConfig::default()
        };
        let a = run_load(&cfg(event.addr().to_string())).expect("event run");
        let b = run_load(&cfg(threaded.addr().to_string())).expect("threaded run");
        assert_eq!(a.queries, 16, "event engine answers everything: {a:?}");
        assert_eq!(b.queries, 16, "threaded engine answers everything: {b:?}");
        assert_eq!(
            a.digest, b.digest,
            "seed {seed}: digests must be byte-identical across engines"
        );
        assert_eq!(a.errors, 0);
        assert_eq!(b.errors, 0);
        assert_eq!(a.per_policy, b.per_policy, "same mix, same policy split");
    }
    // Both engines conserved every query.
    for server in [&event, &threaded] {
        let m = server.metrics();
        assert!(m.conservation_holds());
        assert_eq!(m.queries_served(), 32);
    }
    event.shutdown();
    threaded.shutdown();
}

#[test]
fn chaos_soak_digests_are_identical_across_engines() {
    // The soak is sequential (one outstanding query), so every reply is
    // pure in (seed, schedule, index) on either engine — fault recovery
    // included.
    for seed in [1u64, 13] {
        let event = spawn(false);
        let threaded = spawn(true);
        let cfg = |addr: String| ChaosConfig {
            addr,
            seed,
            schedules: 2,
            queries_per_schedule: 8,
            intensity: 0.5,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg(event.addr().to_string())).expect("event soak");
        let b = run_chaos(&cfg(threaded.addr().to_string())).expect("threaded soak");
        assert!(a.healthy(), "event engine healthy:\n{}", a.render());
        assert!(b.healthy(), "threaded engine healthy:\n{}", b.render());
        assert_eq!(
            a.digest,
            b.digest,
            "seed {seed}: chaos digests must match across engines\nevent:\n{}\nthreaded:\n{}",
            a.render(),
            b.render()
        );
        assert_eq!(a.replies, b.replies);
        assert_eq!(a.dropped, b.dropped);
        event.shutdown();
        threaded.shutdown();
    }
}

#[test]
fn reply_faults_mangle_identically_across_engines() {
    // Reply-path faults key on the request's own seed, so the two
    // engines mangle the same replies the same way.
    let seed = 0xFEED;
    let intensity = 0.6;
    let spawn_faulty = |threaded: bool| {
        Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threaded,
            reply_faults: Some(csqp_net::chaos::FaultPlan::new(seed, intensity)),
            ..ServerConfig::default()
        })
        .expect("bind loopback")
        .spawn()
        .expect("spawn server")
    };
    let event = spawn_faulty(false);
    let threaded = spawn_faulty(true);
    let cfg = |addr: String| ChaosConfig {
        addr,
        seed,
        schedules: 2,
        queries_per_schedule: 8,
        intensity,
        reply_faults: true,
        ..ChaosConfig::default()
    };
    let a = run_chaos(&cfg(event.addr().to_string())).expect("event soak");
    let b = run_chaos(&cfg(threaded.addr().to_string())).expect("threaded soak");
    for (engine, r) in [("event", &a), ("threaded", &b)] {
        assert!(r.healthy(), "{engine} engine healthy:\n{}", r.render());
        assert!(r.mangled > 0, "{engine} engine mangled replies");
        assert_eq!(
            r.replies + r.dropped + r.mangled,
            r.queries_sent,
            "{engine}: every exchange accounted:\n{}",
            r.render()
        );
    }
    assert_eq!(a.digest, b.digest, "mangled digests match across engines");
    assert_eq!(a.mangled, b.mangled);
    event.shutdown();
    threaded.shutdown();
}
