//! End-to-end loopback: a real server on an OS-assigned port, the real
//! `csqp-load` client against it, over actual TCP sockets.
//!
//! Checks the PR's acceptance criteria in miniature: queries complete,
//! nothing panics, reports carry percentiles, identical seeds produce
//! byte-identical results (equal digests), service results match the
//! figure pipeline exactly, and the Table-1 conformance lint ran on
//! every served plan.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::TcpStream;
use std::time::Duration;

use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_serve::load::nth_request;
use csqp_serve::proto::{ErrorCode, Frame, Hello, OptimizerMode};
use csqp_serve::server::roundtrip;
use csqp_serve::{run_load, LoadConfig, Server, ServerConfig};

fn start_server() -> csqp_serve::ServerHandle {
    Server::bind(ServerConfig::default())
        .expect("bind on 127.0.0.1:0")
        .spawn()
        .expect("spawn server threads")
}

fn load_config(addr: &str, seed: u64) -> LoadConfig {
    LoadConfig {
        addr: addr.to_string(),
        clients: 4,
        queries_per_client: Some(3),
        seed,
        ..LoadConfig::default()
    }
}

#[test]
fn loopback_load_serves_queries_deterministically() {
    let server = start_server();
    let addr = server.addr().to_string();

    let first = run_load(&load_config(&addr, 7)).expect("first run");
    assert_eq!(first.queries, 12, "all queries answered: {first:?}");
    assert_eq!(first.errors, 0, "no errors: {first:?}");
    assert_eq!(
        first.rejected, 0,
        "queue depth 64 never saturates 4 clients"
    );
    assert_eq!(first.per_policy.iter().sum::<u64>(), 12);
    assert!(first.p50_ms > 0.0 && first.p99_ms >= first.p95_ms);
    assert!(first.throughput_qps > 0.0);

    // Identical seed ⇒ byte-identical per-query results ⇒ equal digests.
    let second = run_load(&load_config(&addr, 7)).expect("second run");
    assert_eq!(first.digest, second.digest, "same seed, same results");

    // A different seed issues a different mix.
    let third = run_load(&load_config(&addr, 8)).expect("third run");
    assert_ne!(first.digest, third.digest, "different seed, different mix");

    // Server-side accounting saw every query, and the Table-1
    // conformance lint ran on the serve path for each of them.
    let metrics = server.metrics();
    assert_eq!(metrics.queries_served(), 36);
    assert_eq!(metrics.errors(), 0);
    assert_eq!(
        metrics.lint_checks(),
        36,
        "every served plan was linted before execution"
    );
    let snap = metrics.snapshot();
    assert_eq!(snap.per_policy.iter().sum::<u64>(), 36);
    assert!(snap.wire.bytes_sent > 0, "queries shipped bytes: {snap:?}");

    server.shutdown();
}

#[test]
fn service_results_match_the_figure_pipeline() {
    // What the wire returns must equal what runner::run_query computes
    // directly for the same scenario — the serving layer adds transport,
    // not measurement drift.
    let server = start_server();
    let service = server.service();
    let cfg = load_config(&server.addr().to_string(), 99);
    let req = nth_request(&cfg, 0, 0);

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let ack = roundtrip(
        &mut stream,
        &Frame::Hello(Hello {
            client: "pipeline-check".to_string(),
        }),
    )
    .expect("hello");
    assert!(matches!(ack, Frame::HelloAck(_)));
    let reply = roundtrip(&mut stream, &Frame::Query(req.clone())).expect("query");
    let record = match reply {
        Frame::Result(r) => r,
        other => panic!("expected RESULT, got {:?}", other.kind()),
    };

    let query = req.spec.build();
    let mut catalog = service.catalog_for(&req.spec);
    for (rel, &fraction) in query.relations.iter().zip(&req.cache) {
        catalog.set_cached_fraction(rel.id, fraction);
    }
    let direct = csqp_experiments::run_query(
        &query,
        &catalog,
        &csqp_catalog::SystemConfig::default(),
        &[],
        req.policy,
        req.objective,
        &service.config().opt,
        req.seed,
    )
    .expect("direct run");
    assert_eq!(record.pages_sent, direct.metrics.pages_sent);
    assert_eq!(record.control_msgs, direct.metrics.control_msgs);
    assert_eq!(record.bytes_sent, direct.metrics.bytes_sent);
    assert_eq!(record.result_tuples, direct.metrics.result_tuples);
    assert_eq!(record.response_secs, direct.metrics.response_secs());

    let _ = roundtrip(&mut stream, &Frame::Bye);
    server.shutdown();
}

#[test]
fn stats_and_error_frames_work_over_the_wire() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");

    // STATS on a fresh server: all zeros.
    let reply = roundtrip(&mut stream, &Frame::StatsRequest).expect("stats");
    match reply {
        Frame::Stats(s) => {
            assert_eq!(s.queries_served, 0);
            assert_eq!(s.rejected, 0);
        }
        other => panic!("expected STATS, got {:?}", other.kind()),
    }

    // A client sending a server-to-client frame gets a typed error.
    let reply =
        roundtrip(&mut stream, &Frame::Stats(server.metrics().snapshot())).expect("bad direction");
    match reply {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected ERROR, got {:?}", other.kind()),
    }

    // Raw garbage ends the session with a BadFrame error.
    use std::io::Write;
    stream
        .write_all(b"not a csqp frame")
        .expect("write garbage");
    match csqp_serve::proto::read_frame(&mut stream) {
        Ok(Some(Frame::Error(e))) => assert_eq!(e.code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame error, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn saturated_server_rejects_with_retry_hint() {
    // One worker, a one-slot queue, and a burst of concurrent clients:
    // some QUERYs must be rejected with the retry-after hint, and with
    // retries enabled every query still completes.
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn()
    .expect("spawn");

    let report = run_load(&LoadConfig {
        addr: server.addr().to_string(),
        clients: 8,
        queries_per_client: Some(2),
        seed: 3,
        retry_rejected: true,
        ..LoadConfig::default()
    })
    .expect("load");
    assert_eq!(report.queries, 16, "retries drain the burst: {report:?}");
    assert_eq!(report.errors, 0);
    assert!(
        report.rejected > 0,
        "a 1-deep queue under an 8-client burst must reject: {report:?}"
    );
    assert_eq!(server.metrics().rejected(), report.rejected);
    server.shutdown();
}

#[test]
fn zero_deadline_gets_typed_error_and_releases_the_worker() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let cfg = load_config(&server.addr().to_string(), 42);

    // An already-expired deadline comes back as a typed, retryable
    // deadline-exceeded error — promptly, not after a hang.
    let mut doomed = nth_request(&cfg, 0, 0);
    doomed.deadline_ms = Some(0);
    let started = std::time::Instant::now();
    let reply = roundtrip(&mut stream, &Frame::Query(doomed)).expect("query");
    let waited = started.elapsed();
    match reply {
        Frame::Error(e) => {
            assert_eq!(e.code, ErrorCode::DeadlineExceeded);
            assert!(
                e.retry_after_ms.is_some(),
                "deadline errors are retryable: {e:?}"
            );
        }
        other => panic!("expected deadline error, got {:?}", other.kind()),
    }
    assert!(
        waited < Duration::from_secs(2),
        "worker released within ~one read timeout, not {waited:?}"
    );

    // The same connection and worker pool still serve clean traffic.
    let reply = roundtrip(&mut stream, &Frame::Query(nth_request(&cfg, 0, 1))).expect("follow-up");
    assert!(matches!(reply, Frame::Result(_)), "worker was released");

    let metrics = server.metrics();
    assert_eq!(metrics.timed_out(), 1);
    assert_eq!(metrics.queries_served(), 1);
    assert!(metrics.conservation_holds(), "2 in, 1 served + 1 timed out");
    let _ = roundtrip(&mut stream, &Frame::Bye);
    server.shutdown();
}

#[test]
fn client_disconnect_mid_query_never_leaks_accounting() {
    let server = start_server();
    let cfg = load_config(&server.addr().to_string(), 77);

    // Send a valid query and slam the connection shut without reading
    // the reply. The conn thread must notice, the worker must finish its
    // job, and every counter must land in a terminal bucket.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    csqp_serve::proto::write_frame(&mut stream, &Frame::Query(nth_request(&cfg, 0, 0)))
        .expect("send query");
    drop(stream);

    // Settle within a few read-timeout ticks (the default is 200 ms).
    let metrics = server.metrics();
    let give_up = std::time::Instant::now() + Duration::from_secs(3);
    while !(metrics.conservation_holds() && metrics.submitted() == 1) {
        assert!(
            std::time::Instant::now() < give_up,
            "accounting never settled: submitted {} served {} aborted {}",
            metrics.submitted(),
            metrics.queries_served(),
            metrics.aborted()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.service().inflight(), 0, "no leaked worker slot");

    // The pool still serves a fresh connection afterwards.
    let mut probe = TcpStream::connect(server.addr()).expect("reconnect");
    let reply = roundtrip(&mut probe, &Frame::Query(nth_request(&cfg, 1, 0))).expect("probe query");
    assert!(matches!(reply, Frame::Result(_)));
    server.shutdown();
}

#[test]
fn unusable_cache_degrades_on_the_wire_and_passes_the_lint() {
    // A declared client cache with more entries than the query has
    // relations is unusable; the server degrades to query shipping,
    // marks the RESULT, and the degraded plan still passes the Table-1
    // conformance lint (a lint failure would surface as PolicyViolation).
    let server = start_server();
    let cfg = load_config(&server.addr().to_string(), 5);
    let mut req = nth_request(&cfg, 0, 0);
    req.policy = Policy::DataShipping;
    req.cache = vec![0.5; 12]; // far more entries than any mix query has
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let reply = roundtrip(&mut stream, &Frame::Query(req)).expect("query");
    match reply {
        Frame::Result(r) => {
            assert_eq!(r.degraded_from, Some(Policy::DataShipping));
            assert_eq!(
                r.degrade_reason,
                Some(csqp_serve::proto::DegradeReason::CacheUnusable)
            );
        }
        other => panic!("expected degraded RESULT, got {:?}", other.kind()),
    }
    let metrics = server.metrics();
    assert_eq!(metrics.degraded(), 1);
    assert_eq!(
        metrics.lint_checks(),
        1,
        "the degraded plan went through the conformance lint"
    );
    assert!(metrics.conservation_holds());
    let _ = roundtrip(&mut stream, &Frame::Bye);
    server.shutdown();
}

#[test]
fn saturation_degrades_to_query_shipping_under_burst() {
    // High-water mark of 1 with a single worker: any admission overlap
    // downgrades HY/DS to QS instead of queueing expensive work. Zero
    // errors proves every degraded plan passed the Table-1 lint (a
    // violation would come back as a PolicyViolation error).
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_depth: 2,
        high_water: Some(1),
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn()
    .expect("spawn");

    let report = run_load(&LoadConfig {
        addr: server.addr().to_string(),
        clients: 8,
        queries_per_client: Some(4),
        seed: 3,
        retry_rejected: true,
        ..LoadConfig::default()
    })
    .expect("load");
    assert_eq!(report.queries, 32, "retries drain the burst: {report:?}");
    assert_eq!(report.errors, 0, "every degraded plan passed the lint");
    assert!(
        report.degraded > 0,
        "an 8-client burst over high-water 1 must overlap: {report:?}"
    );
    assert_eq!(server.metrics().degraded(), report.degraded);
    assert!(server.metrics().conservation_holds());
    server.shutdown();
}

#[test]
fn two_step_mode_works_over_the_wire() {
    let server = start_server();
    let cfg = LoadConfig {
        addr: server.addr().to_string(),
        clients: 2,
        queries_per_client: Some(2),
        seed: 11,
        optimizer: OptimizerMode::TwoStep,
        policy: Some(Policy::HybridShipping),
        objective: Objective::ResponseTime,
        ..LoadConfig::default()
    };
    let first = run_load(&cfg).expect("two-step load");
    assert_eq!(first.queries, 4);
    assert_eq!(first.errors, 0);
    // The compiled-plan cache must not break determinism: the second run
    // (all cache hits) reproduces the first (all cache misses).
    let second = run_load(&cfg).expect("two-step load, cached");
    assert_eq!(first.digest, second.digest);
    server.shutdown();
}

#[test]
fn shutdown_is_graceful() {
    let server = start_server();
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    server.shutdown(); // joins accept + workers without hanging
                       // The lingering connection is told the server is going away (or the
                       // socket closes) — either way the client is not left hanging.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    match csqp_serve::proto::read_frame(&mut stream) {
        Ok(Some(Frame::Error(e))) => assert_eq!(e.code, ErrorCode::ShuttingDown),
        Ok(None) | Err(_) => {} // closed, also acceptable
        Ok(Some(other)) => panic!("unexpected frame {:?}", other.kind()),
    }
}
