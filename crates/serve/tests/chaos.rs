//! Chaos soak integration tests: a real server on loopback TCP under
//! seeded fault injection.
//!
//! The PR's acceptance bar: across ≥8 fixed seeds, zero panics, zero
//! leaked worker slots or queue permits (clean probes succeed), exact
//! accounting conservation, and the same seed reproducing the same
//! fault schedule and reply digest.
//!
//! Every soak runs once per reactor backend the host supports
//! (`csqp_net::poll::test_backends`, `CSQP_REACTOR` override): the
//! invariants — and the seeded digests — must hold identically under
//! `poll` and `epoll`.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use csqp_net::chaos::FaultPlan;
use csqp_net::poll::{test_backends, Backend};
use csqp_serve::chaos::{run_chaos, ChaosConfig};
use csqp_serve::{Server, ServerConfig, ServerHandle};
use proptest::prelude::*;

/// The fixed soak seeds: small Fibonacci numbers, stable forever so CI
/// failures reproduce locally by copying the seed.
const SOAK_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

fn start_server(reactor: Backend) -> ServerHandle {
    Server::bind(ServerConfig {
        workers: 2,
        queue_depth: 8,
        reactor,
        ..ServerConfig::default()
    })
    .expect("bind on 127.0.0.1:0")
    .spawn()
    .expect("spawn server threads")
}

fn soak_config(addr: &str, seed: u64) -> ChaosConfig {
    ChaosConfig {
        addr: addr.to_string(),
        seed,
        schedules: 2,
        queries_per_schedule: 10,
        intensity: 0.5,
        settle_timeout: Duration::from_secs(15),
        ..ChaosConfig::default()
    }
}

#[test]
fn soak_over_fixed_seeds_never_leaks_or_miscounts() {
    for reactor in test_backends() {
        for seed in SOAK_SEEDS {
            let server = start_server(reactor);
            let report = run_chaos(&soak_config(&server.addr().to_string(), seed))
                .unwrap_or_else(|e| panic!("seed {seed} on {reactor}: soak failed: {e}"));
            assert!(
                report.conservation,
                "seed {seed} on {reactor}: conservation violated\n{}",
                report.render()
            );
            assert!(
                report.probes_ok,
                "seed {seed} on {reactor}: a worker or queue permit leaked\n{}",
                report.render()
            );
            assert_eq!(
                report.client_errors,
                0,
                "seed {seed} on {reactor}: unexpected client-side I/O failure\n{}",
                report.render()
            );
            assert_eq!(report.queries_sent, 20);
            assert_eq!(
                report.replies + report.dropped,
                report.queries_sent,
                "seed {seed} on {reactor}: every exchange ends replied or dropped\n{}",
                report.render()
            );
            server.shutdown();
        }
    }
}

#[test]
fn same_seed_reproduces_schedule_and_digest_across_servers() {
    // Two *fresh* servers — not two runs against one — so the digest
    // cannot lean on warmed caches or leftover state. The second server
    // also runs on every other supported backend: the digest is a
    // function of the seed, not of the readiness mechanism.
    let seed = 13;
    let first_server = start_server(Backend::default_for_host());
    let a = run_chaos(&soak_config(&first_server.addr().to_string(), seed)).expect("first soak");
    first_server.shutdown();
    for reactor in test_backends() {
        let second_server = start_server(reactor);
        let b =
            run_chaos(&soak_config(&second_server.addr().to_string(), seed)).expect("second soak");
        second_server.shutdown();
        assert_eq!(a.digest, b.digest, "same seed, same replies on {reactor}");
        assert_eq!(
            a.faults, b.faults,
            "same seed, same fault schedule on {reactor}"
        );
        assert_eq!(a.replies, b.replies);
        assert_eq!(a.dropped, b.dropped);
    }
}

/// Staleness bound for the catalog-fault soaks: tight enough that
/// withheld refreshes push replicas past it at intensity 0.5.
const CATALOG_SOAK_BOUND: u64 = 2;

/// A server with catalog propagation faults armed from the seeded plan.
/// One event thread = one shard = one catalog replica: shard routing is
/// by file descriptor, which the seed does not control, so a single
/// shard is what makes the drift trajectory a pure function of the
/// request stream.
fn start_catalog_fault_server(reactor: Backend, seed: u64, intensity: f64) -> ServerHandle {
    Server::bind(ServerConfig {
        workers: 2,
        queue_depth: 8,
        event_threads: 1,
        reactor,
        catalog_lag: CATALOG_SOAK_BOUND,
        catalog_faults: Some(FaultPlan::new(seed, intensity)),
        ..ServerConfig::default()
    })
    .expect("bind on 127.0.0.1:0")
    .spawn()
    .expect("spawn server threads")
}

#[test]
fn catalog_fault_soak_conserves_and_the_drift_trace_audits_clean() {
    for reactor in test_backends() {
        let mut drift_bit = 0u64;
        for seed in SOAK_SEEDS {
            let server = start_catalog_fault_server(reactor, seed, 0.5);
            let cfg = ChaosConfig {
                catalog_faults: true,
                ..soak_config(&server.addr().to_string(), seed)
            };
            let report = run_chaos(&cfg)
                .unwrap_or_else(|e| panic!("seed {seed} on {reactor}: catalog soak failed: {e}"));
            assert!(
                report.conservation,
                "seed {seed} on {reactor}: conservation under catalog faults\n{}",
                report.render()
            );
            assert!(
                report.probes_ok,
                "seed {seed} on {reactor}: a worker leaked under catalog faults\n{}",
                report.render()
            );
            assert_eq!(report.client_errors, 0, "seed {seed} on {reactor}");
            assert_eq!(
                report.replies + report.dropped,
                report.queries_sent,
                "seed {seed} on {reactor}: every exchange ends replied or dropped\n{}",
                report.render()
            );
            // The recorded drift trace must replay clean through the
            // verifier: no fresh serve past the bound, no applied epoch
            // regression, faithful lag accounting.
            let trace = server.service().drift_trace();
            assert!(
                !trace.is_empty(),
                "seed {seed} on {reactor}: faults armed, trace empty"
            );
            let audit = csqp_verify::catalog::check_drift(&trace, CATALOG_SOAK_BOUND);
            assert!(
                audit.is_clean(),
                "seed {seed} on {reactor}: drift audit failed: {audit}"
            );
            drift_bit += report.stats.catalog_stale_degraded + report.stats.catalog_stale_rejected;
            server.shutdown();
        }
        assert!(
            drift_bit > 0,
            "{reactor}: across all soak seeds, some replica must trail past the bound"
        );
    }
}

#[test]
fn catalog_fault_soak_same_seed_same_drift_across_fresh_servers() {
    // Epoch lag is server state that carries across queries, so the
    // repeatability claim is across two *fresh* servers: same seed,
    // same fresh state, byte-identical replies and drift trajectory.
    // Running the pair under every supported backend additionally pins
    // the drift trajectory as backend-independent.
    let seed = 21;
    let mut golden: Option<(u64, Vec<_>)> = None;
    for reactor in test_backends() {
        let first = start_catalog_fault_server(reactor, seed, 0.5);
        let a = run_chaos(&ChaosConfig {
            catalog_faults: true,
            ..soak_config(&first.addr().to_string(), seed)
        })
        .expect("first catalog soak");
        let trace_a = first.service().drift_trace();
        first.shutdown();
        let second = start_catalog_fault_server(reactor, seed, 0.5);
        let b = run_chaos(&ChaosConfig {
            catalog_faults: true,
            ..soak_config(&second.addr().to_string(), seed)
        })
        .expect("second catalog soak");
        let trace_b = second.service().drift_trace();
        second.shutdown();
        assert_eq!(a.digest, b.digest, "same seed, same replies on {reactor}");
        assert_eq!(a.replies, b.replies);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(
            trace_a, trace_b,
            "same seed, same drift trajectory on {reactor}"
        );
        match &golden {
            None => golden = Some((a.digest, trace_a)),
            Some((digest, trace)) => {
                assert_eq!(
                    a.digest, *digest,
                    "{reactor}: digest matches other backends"
                );
                assert_eq!(&trace_a, trace, "{reactor}: drift matches other backends");
            }
        }
    }
}

#[test]
fn zero_deadline_soak_times_out_every_served_query_deterministically() {
    // deadline_ms = 0 expires at admission, so every well-formed query
    // comes back deadline-exceeded — a deterministic exercise of the
    // timeout path under fault injection.
    for reactor in test_backends() {
        let server = start_server(reactor);
        let cfg = ChaosConfig {
            deadline_ms: Some(0),
            ..soak_config(&server.addr().to_string(), 21)
        };
        let a = run_chaos(&cfg).expect("zero-deadline soak");
        assert!(
            a.conservation,
            "{reactor}: conservation under timeouts\n{}",
            a.render()
        );
        assert!(
            a.probes_ok,
            "{reactor}: workers survive timeouts\n{}",
            a.render()
        );
        assert!(
            a.stats.timed_out > 0,
            "{reactor}: zero deadlines must time out\n{}",
            a.render()
        );
        assert_eq!(
            a.stats.queries_served,
            0,
            "{reactor}: nothing outruns an already-expired deadline\n{}",
            a.render()
        );
        let b = run_chaos(&cfg).expect("zero-deadline soak, repeated");
        assert_eq!(
            a.digest, b.digest,
            "{reactor}: timeout replies are seeded too"
        );
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any seed — not just the pinned eight — holds the invariants.
    /// The backend is derived from the seed so both get proptest
    /// coverage without doubling the case count.
    #[test]
    fn soak_any_seed_holds_invariants(seed in 0u64..1_000_000) {
        let backends = test_backends();
        let server = start_server(backends[seed as usize % backends.len()]);
        let report = run_chaos(&soak_config(&server.addr().to_string(), seed))
            .expect("soak completes");
        prop_assert!(report.conservation, "seed {}: {}", seed, report.render());
        prop_assert!(report.probes_ok, "seed {}: {}", seed, report.render());
        prop_assert_eq!(report.client_errors, 0);
        server.shutdown();
    }
}
