//! Workspace-wide protocol limits.
//!
//! These constants are load-bearing in *two* places at once: the serving
//! engine clamps what it advertises and enforces on the wire, and the
//! model checkers in `csqp-verify` bound the state they explore. If the
//! two ever diverged — the engine granting a wider window than the model
//! masks — the checker's exhaustiveness claim would silently
//! under-approximate the machine actually served. Defining the limit
//! once, below every consumer, makes that drift unrepresentable; the
//! `window_cap` test in `csqp-serve` pins the agreement end to end
//! (config clamp, HELLO-ACK advertisement, model serial mask).

/// The per-session pipelining cap: the maximum number of queries one
/// session may have admitted-but-unanswered at once.
///
/// In-flight queries are tracked as *slots* — bits of a `u16` — so this
/// cap keeps the session machine finite by construction, which is what
/// makes exhaustive model checking (`csqp-check --protocol` /
/// `--system`) tractable. `ServerConfig::effective_pipeline_depth`
/// clamps the configured and HELLO-ACK-advertised window to this value,
/// and `csqp_verify::protocol::SessionModel` sizes its serial mask from
/// it, so the window the engine grants can never exceed the window the
/// model checks.
pub const MAX_SERIALS: u8 = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_cap_fits_the_slot_mask() {
        // Slots live in a u16 bitmask; the cap must not overflow it.
        assert!(u32::from(MAX_SERIALS) <= u16::BITS);
    }
}
