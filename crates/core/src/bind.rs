//! Runtime binding of logical annotations to physical sites (§2.1).
//!
//! "At runtime, the logical annotations are bound to actual sites in the
//! network. First the locations of the display and scan operators are
//! resolved; then, the locations of the other operators are resolved given
//! their annotations."
//!
//! Binding is a fixpoint over the annotation references: `client` and
//! `primary copy` resolve immediately; `consumer` copies the parent's
//! site, `producer`/`inner relation`/`outer relation` copy a child's.
//! Well-formed plans always reach the fixpoint; ill-formed plans (a
//! two-node cycle) are reported as [`BindError::Cycle`].

use std::fmt;

use csqp_catalog::{Catalog, SiteId};

use crate::annotation::Annotation;
use crate::plan::{LogicalOp, NodeId, Plan};

/// What binding needs to know about the runtime environment.
#[derive(Debug, Clone, Copy)]
pub struct BindContext<'a> {
    /// Placement of primary copies (and cache state, unused here).
    pub catalog: &'a Catalog,
    /// The site at which the query was submitted (the client).
    pub query_site: SiteId,
}

/// Binding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// The plan has an annotation cycle (it is not well-formed).
    Cycle {
        /// Nodes left unresolved when the fixpoint stalled.
        unresolved: Vec<NodeId>,
    },
    /// The plan is structurally broken: an annotation refers to a child
    /// slot or parent that does not exist. `Plan::validate_structure`
    /// catches these before binding; this arm reports them instead of
    /// panicking when a caller skips validation.
    Malformed {
        /// The node whose annotation could not be resolved.
        node: NodeId,
        /// What was missing.
        reason: String,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::Cycle { unresolved } => write!(
                f,
                "annotation cycle: {} nodes unresolved ({:?})",
                unresolved.len(),
                unresolved
            ),
            BindError::Malformed { node, reason } => {
                write!(f, "malformed plan at {node:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for BindError {}

/// A plan together with the physical site of every operator.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPlan {
    /// The annotated plan.
    pub plan: Plan,
    /// Physical site per arena slot (entries for unreachable slots are the
    /// client and never read).
    pub sites: Vec<SiteId>,
}

impl BoundPlan {
    /// Site of a node.
    #[inline]
    pub fn site(&self, id: NodeId) -> SiteId {
        self.sites[id.index()]
    }

    /// Number of reachable operators bound to the client.
    pub fn ops_at_client(&self) -> usize {
        self.plan
            .postorder()
            .into_iter()
            .filter(|&id| self.site(id).is_client())
            .count()
    }

    /// One-line rendering with sites, e.g.
    /// `(display@client (join@server1 …))`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_node(self.plan.root(), &mut s);
        s
    }

    /// Render `child`, or a `?` placeholder when the slot is empty — a
    /// renderer must not panic even on a plan that lost an input.
    fn render_child(&self, child: Option<NodeId>, out: &mut String) {
        match child {
            Some(c) => self.render_node(c, out),
            None => out.push('?'),
        }
    }

    fn render_node(&self, id: NodeId, out: &mut String) {
        use fmt::Write;
        let n = self.plan.node(id);
        let site = self.site(id);
        match n.op {
            LogicalOp::Display => {
                let _ = write!(out, "(display@{site} ");
                self.render_child(n.children[0], out);
                out.push(')');
            }
            LogicalOp::Join => {
                let _ = write!(out, "(join@{site} ");
                self.render_child(n.children[0], out);
                out.push(' ');
                self.render_child(n.children[1], out);
                out.push(')');
            }
            LogicalOp::Select { rel } => {
                let _ = write!(out, "(select {rel}@{site} ");
                self.render_child(n.children[0], out);
                out.push(')');
            }
            LogicalOp::Aggregate { groups } => {
                let _ = write!(out, "(agg {groups}@{site} ");
                self.render_child(n.children[0], out);
                out.push(')');
            }
            LogicalOp::Scan { rel } => {
                let _ = write!(out, "(scan {rel}@{site})");
            }
        }
    }
}

/// Bind every operator of `plan` to a physical site.
///
/// ```
/// use csqp_core::{bind, Annotation, BindContext, JoinTree};
/// use csqp_catalog::{Catalog, JoinEdge, QuerySpec, RelId, Relation, SiteId};
///
/// let query = QuerySpec::new(
///     vec![Relation::benchmark(RelId(0), "A"), Relation::benchmark(RelId(1), "B")],
///     vec![JoinEdge { a: RelId(0), b: RelId(1), selectivity: 1e-4 }],
/// );
/// let mut catalog = Catalog::new(2);
/// catalog.place(RelId(0), SiteId::server(1));
/// catalog.place(RelId(1), SiteId::server(2));
///
/// // Query-shipping plan: scans at primary copies, join at its inner's site.
/// let plan = JoinTree::left_deep(&[RelId(0), RelId(1)])
///     .into_plan(&query, Annotation::InnerRel, Annotation::PrimaryCopy);
/// let bound = bind(&plan, BindContext { catalog: &catalog, query_site: SiteId::CLIENT })?;
/// assert_eq!(bound.site(plan.join_nodes()[0]), SiteId::server(1));
/// // After migration the *same* annotated plan binds differently.
/// catalog.place(RelId(0), SiteId::server(2));
/// let rebound = bind(&plan, BindContext { catalog: &catalog, query_site: SiteId::CLIENT })?;
/// assert_eq!(rebound.site(plan.join_nodes()[0]), SiteId::server(2));
/// # Ok::<(), csqp_core::BindError>(())
/// ```
pub fn bind(plan: &Plan, ctx: BindContext<'_>) -> Result<BoundPlan, BindError> {
    let order = plan.postorder();
    let parents = plan.parents();
    let mut sites: Vec<Option<SiteId>> = vec![None; plan.arena_len()];

    // Phase 1: display and scans resolve directly.
    for &id in &order {
        let n = plan.node(id);
        sites[id.index()] = match (n.op, n.ann) {
            (LogicalOp::Display, _) => Some(ctx.query_site),
            (LogicalOp::Scan { .. }, Annotation::Client) => Some(ctx.query_site),
            (LogicalOp::Scan { rel }, Annotation::PrimaryCopy) => {
                Some(ctx.catalog.primary_site(rel))
            }
            _ => None,
        };
    }

    // Phase 2: fixpoint over the annotation references.
    loop {
        let mut progress = false;
        for &id in &order {
            if sites[id.index()].is_some() {
                continue;
            }
            let n = plan.node(id);
            let referent = match n.ann {
                Annotation::Consumer => match parents[id.index()] {
                    Some((p, _)) => p,
                    None => {
                        return Err(BindError::Malformed {
                            node: id,
                            reason: "'consumer' annotation on the root: no parent to follow".into(),
                        })
                    }
                },
                ann => match ann.points_down_at().and_then(|slot| n.children[slot]) {
                    Some(c) => c,
                    None => {
                        return Err(BindError::Malformed {
                            node: id,
                            reason: format!(
                                "annotation '{ann}' on {:?} has no child to follow",
                                n.op
                            ),
                        })
                    }
                },
            };
            if let Some(site) = sites[referent.index()] {
                sites[id.index()] = Some(site);
                progress = true;
            }
        }
        if order.iter().all(|id| sites[id.index()].is_some()) {
            break;
        }
        if !progress {
            return Err(BindError::Cycle {
                unresolved: order
                    .iter()
                    .copied()
                    .filter(|id| sites[id.index()].is_none())
                    .collect(),
            });
        }
    }

    Ok(BoundPlan {
        plan: plan.clone(),
        sites: sites
            .into_iter()
            .map(|s| s.unwrap_or(ctx.query_site))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::JoinTree;
    use csqp_catalog::{JoinEdge, QuerySpec, RelId, Relation};

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn catalog_two_servers() -> Catalog {
        let mut c = Catalog::new(2);
        c.place(RelId(0), SiteId::server(1));
        c.place(RelId(1), SiteId::server(2));
        c.place(RelId(2), SiteId::server(1));
        c
    }

    #[test]
    fn data_shipping_binds_everything_to_client() {
        let q = chain(3);
        let cat = catalog_two_servers();
        let plan = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        let bound = bind(
            &plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        for id in plan.postorder() {
            assert!(bound.site(id).is_client());
        }
        assert_eq!(bound.ops_at_client(), 6); // display + 2 joins + 3 scans
    }

    #[test]
    fn query_shipping_binds_joins_to_servers() {
        let q = chain(3);
        let cat = catalog_two_servers();
        let plan = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            Annotation::InnerRel,
            Annotation::PrimaryCopy,
        );
        let bound = bind(
            &plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        // Scans at their primary copies.
        for scan in plan.scan_nodes() {
            let LogicalOp::Scan { rel } = plan.node(scan).op else {
                unreachable!()
            };
            assert_eq!(bound.site(scan), cat.primary_site(rel));
        }
        // Left-deep with inner-relation annotations: every join follows
        // its left child; the bottom join sits where R0 lives (server 1).
        let joins = plan.join_nodes();
        assert_eq!(bound.site(joins[0]), SiteId::server(1));
        assert_eq!(bound.site(joins[1]), SiteId::server(1));
        // Display at the client.
        assert!(bound.site(plan.root()).is_client());
        assert_eq!(bound.ops_at_client(), 1);
    }

    #[test]
    fn outer_rel_follows_right_child() {
        let q = chain(2);
        let cat = catalog_two_servers();
        let plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::OuterRel,
            Annotation::PrimaryCopy,
        );
        let bound = bind(
            &plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        let join = plan.join_nodes()[0];
        assert_eq!(bound.site(join), SiteId::server(2));
    }

    #[test]
    fn consumer_chain_resolves_through_display() {
        // join[consumer] under display: resolves to the client even though
        // its children are at servers — hybrid shipping mixing sites.
        let q = chain(2);
        let cat = catalog_two_servers();
        let plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::PrimaryCopy,
        );
        let bound = bind(
            &plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        let join = plan.join_nodes()[0];
        assert!(bound.site(join).is_client());
        assert!(bound.render().contains("(scan R0@server1)"));
        assert!(bound.render().contains("(scan R1@server2)"));
    }

    #[test]
    fn cycle_is_reported() {
        let q = chain(3);
        let cat = catalog_two_servers();
        let mut plan = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::PrimaryCopy,
        );
        let joins = plan.join_nodes();
        // top join points down at bottom join; bottom join points up.
        plan.node_mut(joins[1]).ann = Annotation::InnerRel;
        plan.node_mut(joins[0]).ann = Annotation::Consumer;
        let err = bind(
            &plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap_err();
        let BindError::Cycle { unresolved } = err else {
            panic!("expected a cycle, got {err}");
        };
        assert_eq!(unresolved.len(), 2);
    }

    #[test]
    fn malformed_plan_is_reported_not_panicked() {
        use crate::plan::{LogicalOp, PlanNode};
        // A lone join with a down-pointing annotation but no children:
        // binding must return Malformed instead of panicking.
        let cat = catalog_two_servers();
        let mut plan = Plan::from_parts(Vec::new(), NodeId(0));
        let j = plan.push(PlanNode {
            op: LogicalOp::Join,
            ann: Annotation::InnerRel,
            children: [None, None],
        });
        let plan = Plan::from_parts(vec![plan.node(j).clone()], j);
        let err = bind(
            &plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap_err();
        assert!(matches!(err, BindError::Malformed { .. }), "{err}");
    }

    #[test]
    fn rebinding_after_migration_moves_operators() {
        // The §5 scenario: the same annotated plan binds differently when
        // data migrates.
        let q = chain(2);
        let plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::InnerRel,
            Annotation::PrimaryCopy,
        );
        let mut cat = Catalog::new(2);
        cat.place(RelId(0), SiteId::server(1));
        cat.place(RelId(1), SiteId::server(2));
        let b1 = bind(
            &plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        assert_eq!(b1.site(plan.join_nodes()[0]), SiteId::server(1));
        // Migrate R0 to server 2: the join follows.
        cat.place(RelId(0), SiteId::server(2));
        let b2 = bind(
            &plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        assert_eq!(b2.site(plan.join_nodes()[0]), SiteId::server(2));
    }
}
