//! Table 1: the three execution policies as annotation restrictions.
//!
//! | operator | data shipping        | query shipping           | hybrid shipping                  |
//! |----------|----------------------|--------------------------|----------------------------------|
//! | display  | client               | client                   | client                           |
//! | join     | consumer (= client)  | inner or outer relation  | consumer, inner or outer relation|
//! | select   | consumer (= client)  | producer                 | consumer or producer             |
//! | scan     | client               | primary copy             | client or primary copy           |

use std::fmt;

use crate::annotation::Annotation;
use crate::diag::{DiagCode, Diagnostic};
use crate::plan::{LogicalOp, Plan};

/// A query execution policy (§2.2).
///
/// ```
/// use csqp_core::{Annotation, JoinTree, Policy};
/// use csqp_catalog::{JoinEdge, QuerySpec, RelId, Relation};
///
/// let query = QuerySpec::new(
///     vec![Relation::benchmark(RelId(0), "A"), Relation::benchmark(RelId(1), "B")],
///     vec![JoinEdge { a: RelId(0), b: RelId(1), selectivity: 1e-4 }],
/// );
/// // A canonical data-shipping plan: everything at the client.
/// let plan = JoinTree::left_deep(&[RelId(0), RelId(1)])
///     .into_plan(&query, Annotation::Consumer, Annotation::Client);
/// assert!(Policy::DataShipping.validate(&plan).is_ok());
/// assert!(Policy::QueryShipping.validate(&plan).is_err());
/// // Every pure plan is a hybrid plan (§2.2.3).
/// assert!(Policy::HybridShipping.validate(&plan).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// All operators at the client; scans use client-cached data (§2.2.1).
    DataShipping,
    /// Scans at primary copies; every other operator at one of its
    /// producers; nothing at the client except display (§2.2.2).
    QueryShipping,
    /// Any annotation allowed by either pure policy (§2.2.3).
    HybridShipping,
}

impl Policy {
    /// All three policies, in the paper's order.
    pub const ALL: [Policy; 3] = [
        Policy::DataShipping,
        Policy::QueryShipping,
        Policy::HybridShipping,
    ];

    /// The annotations this policy permits for `op` — Table 1, row by row.
    pub fn allowed(self, op: LogicalOp) -> &'static [Annotation] {
        use Annotation::*;
        match (self, op) {
            (_, LogicalOp::Display) => &[Client],
            (Policy::DataShipping, LogicalOp::Join) => &[Consumer],
            (Policy::DataShipping, LogicalOp::Select { .. }) => &[Consumer],
            (Policy::DataShipping, LogicalOp::Aggregate { .. }) => &[Consumer],
            (Policy::DataShipping, LogicalOp::Scan { .. }) => &[Client],
            (Policy::QueryShipping, LogicalOp::Join) => &[InnerRel, OuterRel],
            (Policy::QueryShipping, LogicalOp::Select { .. }) => &[Producer],
            (Policy::QueryShipping, LogicalOp::Aggregate { .. }) => &[Producer],
            (Policy::QueryShipping, LogicalOp::Scan { .. }) => &[PrimaryCopy],
            (Policy::HybridShipping, LogicalOp::Join) => &[Consumer, InnerRel, OuterRel],
            (Policy::HybridShipping, LogicalOp::Select { .. }) => &[Consumer, Producer],
            (Policy::HybridShipping, LogicalOp::Aggregate { .. }) => &[Consumer, Producer],
            (Policy::HybridShipping, LogicalOp::Scan { .. }) => &[Client, PrimaryCopy],
        }
    }

    /// True when `ann` is permitted for `op` under this policy.
    pub fn permits(self, op: LogicalOp, ann: Annotation) -> bool {
        self.allowed(op).contains(&ann)
    }

    /// Check that every node of `plan` carries a permitted annotation.
    pub fn validate(self, plan: &Plan) -> Result<(), Diagnostic> {
        for id in plan.postorder() {
            let n = plan.node(id);
            if !self.permits(n.op, n.ann) {
                return Err(Diagnostic::at(
                    DiagCode::PolicyViolation,
                    plan,
                    id,
                    format!(
                        "{self} forbids annotation '{}' on {:?} (allowed: {})",
                        n.ann,
                        n.op,
                        self.allowed(n.op)
                            .iter()
                            .map(|a| a.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Short name for tables and CLI flags.
    pub fn short(self) -> &'static str {
        match self {
            Policy::DataShipping => "DS",
            Policy::QueryShipping => "QS",
            Policy::HybridShipping => "HY",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Policy::DataShipping => "data-shipping",
            Policy::QueryShipping => "query-shipping",
            Policy::HybridShipping => "hybrid-shipping",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::JoinTree;
    use csqp_catalog::{JoinEdge, QuerySpec, RelId, Relation};
    use proptest::prelude::*;

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    /// Table 1, cell by cell — this is experiment T1.
    #[test]
    fn table1_exact_cells() {
        use Annotation::*;
        use LogicalOp::*;
        let scan = Scan { rel: RelId(0) };
        let select = Select { rel: RelId(0) };
        for p in Policy::ALL {
            assert_eq!(p.allowed(Display), &[Client]);
        }
        assert_eq!(Policy::DataShipping.allowed(Join), &[Consumer]);
        assert_eq!(Policy::DataShipping.allowed(select), &[Consumer]);
        assert_eq!(Policy::DataShipping.allowed(scan), &[Client]);
        assert_eq!(Policy::QueryShipping.allowed(Join), &[InnerRel, OuterRel]);
        assert_eq!(Policy::QueryShipping.allowed(select), &[Producer]);
        assert_eq!(Policy::QueryShipping.allowed(scan), &[PrimaryCopy]);
        assert_eq!(
            Policy::HybridShipping.allowed(Join),
            &[Consumer, InnerRel, OuterRel]
        );
        assert_eq!(
            Policy::HybridShipping.allowed(select),
            &[Consumer, Producer]
        );
        assert_eq!(Policy::HybridShipping.allowed(scan), &[Client, PrimaryCopy]);
    }

    /// Hybrid is exactly the union of the two pure policies (§2.2.3:
    /// "allows each operator to be annotated in any way allowed by
    /// data-shipping or by query-shipping").
    #[test]
    fn hybrid_is_union_of_pure_policies() {
        let ops = [
            LogicalOp::Display,
            LogicalOp::Join,
            LogicalOp::Select { rel: RelId(0) },
            LogicalOp::Scan { rel: RelId(0) },
        ];
        for op in ops {
            for ann in op.legal_annotations() {
                let hybrid = Policy::HybridShipping.permits(op, *ann);
                let union = Policy::DataShipping.permits(op, *ann)
                    || Policy::QueryShipping.permits(op, *ann);
                assert_eq!(hybrid, union, "{op:?} / {ann}");
            }
        }
    }

    #[test]
    fn validate_accepts_canonical_ds_and_qs_plans() {
        let q = chain(3);
        let order: Vec<RelId> = (0..3).map(RelId).collect();
        let ds =
            JoinTree::left_deep(&order).into_plan(&q, Annotation::Consumer, Annotation::Client);
        Policy::DataShipping.validate(&ds).unwrap();
        Policy::HybridShipping.validate(&ds).unwrap();
        assert!(Policy::QueryShipping.validate(&ds).is_err());

        let qs = JoinTree::left_deep(&order).into_plan(
            &q,
            Annotation::InnerRel,
            Annotation::PrimaryCopy,
        );
        Policy::QueryShipping.validate(&qs).unwrap();
        Policy::HybridShipping.validate(&qs).unwrap();
        assert!(Policy::DataShipping.validate(&qs).is_err());
    }

    proptest! {
        /// Any plan valid under a pure policy is valid under hybrid.
        #[test]
        fn pure_plans_are_hybrid_plans(join_inner in proptest::bool::ANY, qs in proptest::bool::ANY) {
            let q = chain(4);
            let order: Vec<RelId> = (0..4).map(RelId).collect();
            let (jann, sann) = if qs {
                (
                    if join_inner { Annotation::InnerRel } else { Annotation::OuterRel },
                    Annotation::PrimaryCopy,
                )
            } else {
                (Annotation::Consumer, Annotation::Client)
            };
            let plan = JoinTree::left_deep(&order).into_plan(&q, jann, sann);
            let pure = if qs { Policy::QueryShipping } else { Policy::DataShipping };
            prop_assert!(pure.validate(&plan).is_ok());
            prop_assert!(Policy::HybridShipping.validate(&plan).is_ok());
        }
    }
}
