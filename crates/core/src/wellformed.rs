//! Well-formedness of annotated plans (§2.2.3).
//!
//! "A well-formed plan has no cycles, and as a consequence, there is a
//! path (via annotations) from every node of the plan to a leaf (i.e.,
//! scan) or to the root (i.e., display). A cycle can be observed for
//! example, if an operator A produces the input of an operator B, and the
//! site annotation of A is consumer and of B is producer. … Fortunately,
//! because the query plans are trees, only cycles with two nodes can
//! occur."
//!
//! A two-node cycle exists exactly when a parent's annotation points down
//! at a child slot whose occupant's annotation points back up
//! (`consumer`).

use crate::diag::{DiagCode, Diagnostic};
use crate::plan::Plan;

/// True when `plan` has no annotation cycle, i.e. site binding will
/// terminate.
pub fn is_well_formed(plan: &Plan) -> bool {
    find_cycle(plan).is_none()
}

/// The first (parent, child) pair forming a two-node annotation cycle, in
/// postorder, or `None` for a well-formed plan.
///
/// A down-pointing annotation over an *empty* child slot (an arity
/// violation) is not a cycle; [`check_well_formed`] reports it as a
/// diagnostic, and `Plan::validate_structure` rejects it outright.
pub fn find_cycle(plan: &Plan) -> Option<(crate::plan::NodeId, crate::plan::NodeId)> {
    for id in plan.postorder() {
        let n = plan.node(id);
        if let Some(slot) = n.ann.points_down_at() {
            let Some(child) = n.children[slot] else {
                continue;
            };
            if plan.node(child).ann.points_up() {
                return Some((id, child));
            }
        }
    }
    None
}

/// Check well-formedness, reporting the offending annotation pair with
/// its node path instead of a bare boolean.
pub fn check_well_formed(plan: &Plan) -> Result<(), Diagnostic> {
    for id in plan.postorder() {
        let n = plan.node(id);
        if let Some(slot) = n.ann.points_down_at() {
            match n.children[slot] {
                None => {
                    return Err(Diagnostic::at(
                        DiagCode::DanglingChild,
                        plan,
                        id,
                        format!(
                            "annotation '{}' points at empty child slot {slot} of {:?}",
                            n.ann, n.op
                        ),
                    ))
                }
                Some(child) => {
                    let c = plan.node(child);
                    if c.ann.points_up() {
                        return Err(Diagnostic::at(
                            DiagCode::AnnotationCycle,
                            plan,
                            id,
                            format!(
                                "two-node cycle: {:?} '{}' points down at {:?} '{}', \
                                 which points back up",
                                n.op, n.ann, c.op, c.ann
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use crate::builder::JoinTree;
    use csqp_catalog::{JoinEdge, QuerySpec, RelId, Relation};

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    #[test]
    fn pure_plans_are_well_formed() {
        let q = chain(4);
        let order: Vec<RelId> = (0..4).map(RelId).collect();
        for (jann, sann) in [
            (Annotation::Consumer, Annotation::Client),
            (Annotation::InnerRel, Annotation::PrimaryCopy),
            (Annotation::OuterRel, Annotation::PrimaryCopy),
        ] {
            let p = JoinTree::left_deep(&order).into_plan(&q, jann, sann);
            assert!(is_well_formed(&p), "{p}");
        }
    }

    #[test]
    fn join_pointing_at_consumer_join_is_a_cycle() {
        // join_top[inner] -> join_bot, join_bot[consumer] -> join_top.
        let q = chain(3);
        let order: Vec<RelId> = (0..3).map(RelId).collect();
        let mut p =
            JoinTree::left_deep(&order).into_plan(&q, Annotation::Consumer, Annotation::Client);
        let joins = p.join_nodes(); // postorder: bottom join first
        let (bottom, top) = (joins[0], joins[1]);
        p.node_mut(top).ann = Annotation::InnerRel; // points at child 0 = bottom
        p.node_mut(bottom).ann = Annotation::Consumer; // points back up
        let cyc = find_cycle(&p);
        assert_eq!(cyc, Some((top, bottom)));
        assert!(!is_well_formed(&p));
    }

    #[test]
    fn select_producer_under_pointing_join_is_fine() {
        // producer points *down* (towards the scan), so no cycle with a
        // parent pointing at the select.
        let q = chain(2).with_selection(RelId(0), 0.5);
        let mut p = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::InnerRel,
            Annotation::PrimaryCopy,
        );
        // join points at child 0, which is the select (annotation
        // producer): both point down -> well-formed.
        assert!(is_well_formed(&p));
        // Flip the select to consumer: join[inner] -> select[consumer] is
        // now a cycle.
        let sel = p.select_nodes()[0];
        p.node_mut(sel).ann = Annotation::Consumer;
        assert!(!is_well_formed(&p));
    }

    #[test]
    fn outer_rel_cycle_detected_on_slot_one() {
        let q = chain(3);
        // Bushy-ish: top join's child 1 is a join.
        let t = JoinTree::join(
            JoinTree::leaf(RelId(0)),
            JoinTree::join(JoinTree::leaf(RelId(1)), JoinTree::leaf(RelId(2))),
        );
        let mut p = t.into_plan(&q, Annotation::Consumer, Annotation::Client);
        let joins = p.join_nodes();
        let (inner_join, top_join) = (joins[0], joins[1]);
        p.node_mut(top_join).ann = Annotation::OuterRel; // points at child 1
        p.node_mut(inner_join).ann = Annotation::Consumer;
        assert!(!is_well_formed(&p));
        // But pointing at child 0 (a scan, which can't point up) is fine.
        p.node_mut(top_join).ann = Annotation::InnerRel;
        assert!(is_well_formed(&p));
    }
}
