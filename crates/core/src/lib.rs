//! The paper's primary contribution, as a library: client-server query
//! execution policies expressed as restrictions on *site annotations* of
//! query-plan operators.
//!
//! "The data-shipping, query-shipping, and hybrid-shipping policies can be
//! defined by the limitations they place on assigning site annotations to
//! the operator nodes of a query plan." (§2.2, Table 1)
//!
//! The crate provides:
//!
//! * [`plan`] — binary operator trees (display / join / select / scan) in
//!   an arena, with structural validation and pretty-printing;
//! * [`annotation`] — the logical site annotations (`client`, `consumer`,
//!   `producer`, `inner relation`, `outer relation`, `primary copy`);
//! * [`policy`] — Table 1: which annotations each policy permits per
//!   operator, plus whole-plan validation;
//! * [`wellformed`] — the two-node-cycle check of §2.2.3 ("a well-formed
//!   plan has no cycles… only cycles with two nodes can occur");
//! * [`bind()`] — runtime binding of logical annotations to physical sites
//!   ("the logical annotations are bound to actual sites in the network",
//!   §2.1);
//! * [`builder`] — convenience constructors (left-deep, balanced-bushy,
//!   explicit join trees) used by the optimizer and the tests;
//! * [`cancel`] — cooperative cancellation tokens with optional deadlines,
//!   probed by the optimizer and runner loops so the serving stack can
//!   abandon dead work promptly;
//! * [`limits`] — protocol limits shared by the serving engine and the
//!   model checkers, defined once so the machine checked can never be
//!   narrower than the machine served.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod annotation;
pub mod bind;
pub mod builder;
pub mod cancel;
pub mod diag;
pub mod limits;
pub mod plan;
pub mod policy;
pub mod wellformed;

pub use annotation::Annotation;
pub use bind::{bind, BindContext, BindError, BoundPlan};
pub use builder::JoinTree;
pub use cancel::{CancelToken, StopReason};
pub use diag::{DiagCode, Diagnostic};
pub use plan::{LogicalOp, NodeId, Plan, PlanNode};
pub use policy::Policy;
pub use wellformed::{check_well_formed, is_well_formed};
