//! Rich plan diagnostics.
//!
//! The checks in this crate (structure, well-formedness, policy
//! conformance) and the analyzer passes in `csqp-verify` all report
//! failures as a [`Diagnostic`]: a machine-readable [`DiagCode`], the
//! offending node with its *path* from the plan root (e.g.
//! `display/join[0]/select`), and a human-readable detail line. This
//! replaces the seed's mix of `bool` returns, `String` errors, and
//! `expect("validated arity")` panics.
//!
//! `csqp-verify` re-exports these types as its error vocabulary; the codes
//! for its cost-model and simulator passes live here too so a single enum
//! covers every pass.

use std::fmt;

use crate::plan::{NodeId, Plan};

/// Machine-readable diagnostic category, one per invariant the checkers
/// enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    // -- structural pass --------------------------------------------------
    /// The plan root is not a display operator.
    RootNotDisplay,
    /// An operator has the wrong number of children for its arity.
    BadArity,
    /// A child reference is out of the arena, or an annotation points at
    /// an empty child slot.
    DanglingChild,
    /// A node is referenced by more than one parent (the plan is a DAG,
    /// not a tree).
    SharedNode,
    /// An annotation that no policy ever allows for the operator.
    IllegalAnnotation,
    /// A base relation is scanned more than once.
    DuplicateScan,
    /// A select does not sit directly over the scan of its relation.
    SelectPlacement,
    /// The two children of a join cover overlapping relation sets.
    JoinOverlap,
    /// The plan's aggregate does not match the query's (missing, spurious,
    /// or wrong group count).
    AggregateMismatch,
    /// The set of scanned relations differs from the query's relations.
    ScanCoverage,
    /// A two-node annotation cycle (§2.2.3): binding would not terminate.
    AnnotationCycle,
    /// Site binding stalled without a two-node cycle being found first.
    UnresolvedSite,
    // -- policy pass -------------------------------------------------------
    /// An annotation outside the policy's Table 1 row for the operator.
    PolicyViolation,
    // -- cost pass ---------------------------------------------------------
    /// A resource-usage vector has a negative component.
    NegativeResource,
    /// A node's response time exceeds the sum of its phases.
    ResponseExceedsPhases,
    /// Scaling cardinalities up made the plan cheaper.
    NonMonotoneCost,
    /// A cardinality estimate exceeds the product of base-relation sizes.
    CardinalityBound,
    /// A simulator configuration parameter is outside its sane range
    /// (zero page size, random I/O faster than sequential, …).
    ConfigInvariant,
    // -- simulator pass ----------------------------------------------------
    /// The event queue delivered an event before the current clock.
    EventTimeRegression,
    /// Same-timestamp events are delivered in insertion-order-dependent
    /// order that changes observable statistics.
    TieBreakNondeterminism,
    // -- protocol model checker (`csqp-verify::protocol`) -------------------
    /// A reachable non-terminal session state with no enabled event: the
    /// session can neither progress nor be swept.
    ProtocolStuck,
    /// The session machine emitted two replies for one admitted request.
    ProtocolDoubleReply,
    /// The pipeline-window invariant broke: more queries in flight than
    /// the advertised depth, or an admission that never claimed a slot.
    ProtocolWindowLeak,
    /// An admitted query reached a terminal session state without being
    /// answered or cancelled (the worker is leaked).
    ProtocolWorkerLeak,
    /// The sweep invariant broke: a session that satisfies its finish
    /// condition was never closed.
    ProtocolSweepMissed,
    // -- system model checker (`csqp-verify::system`) ------------------------
    /// Cross-session starvation: a queued admission was overtaken by more
    /// than the bounded number of other sessions' jobs before a worker
    /// picked it up.
    SystemStarvation,
    /// Global worker conservation broke: an admitted query of a live
    /// session has no backing job in the admission queue, the worker
    /// pool, or the completion channel (or has more than one).
    SystemWorkerLeak,
    /// A completion was posted while the shard was polling and can sit in
    /// the channel forever: delivery is disabled along a reachable lasso,
    /// so the reply never reaches a write.
    SystemLostWakeup,
    /// The shutdown sweep left a session open (or an outstanding serial
    /// neither replied nor cancelled) after the pool closed.
    SystemSweepIncomplete,
    // -- memo-consistency pass (`csqp-verify::memo`) -------------------------
    /// A memo entry's stored fingerprint does not re-derive from its
    /// witness bytes, or a compiled entry's witness is not the canonical
    /// preimage of its structured key: the collision guard is broken.
    MemoFingerprint,
    /// A memo entry carries a generation the table has never issued:
    /// invalidation bookkeeping is corrupt.
    MemoGeneration,
    /// A winner-layer memo entry has a missing, non-finite, or negative
    /// proved cost.
    MemoCost,
    // -- catalog drift-conformance pass (`csqp-verify::catalog`) -------------
    /// A plan was served fresh (neither degraded nor rejected) from a
    /// replica whose epoch lag exceeded the configured `max_epoch_lag`
    /// staleness bound.
    CatalogStaleServed,
    /// A replica's epoch went backwards: a reordered (older) snapshot
    /// delivery was applied instead of being rejected.
    CatalogEpochRegress,
    /// The staleness accounting is inconsistent: a serve event's recorded
    /// lag disagrees with the lag reconstructed from the publish/refresh
    /// history, so the bound cannot be trusted.
    CatalogLagBound,
    /// A query referenced a relation the catalog never placed; the serve
    /// boundary must refuse it with a typed error, never panic a shard.
    CatalogUnplaced,
    // -- bounds pass (`csqp-verify::bounds`) ---------------------------------
    /// An executed operator produced more tuples (or pages) than the
    /// static worst-case bound derived from declared key constraints:
    /// either an engine bug or an unsound bound rule.
    BoundViolated,
    /// Bound arithmetic left the representable range (or the page-count
    /// conversion met hostile statistics): the analyzer refuses to emit a
    /// number it cannot stand behind.
    BoundOverflow,
    /// A declared unary key is not justified by the query's own
    /// statistics (an incident edge admits more than one match per
    /// tuple): every bound derived from it would be unsound.
    BoundKeyUnsound,
    // -- source lints (`csqp-lint`) -----------------------------------------
    /// A wall-clock read (`Instant::now`, `SystemTime::now`) or
    /// `thread::sleep` outside the justified allowlist.
    WallClockUse,
    /// A nondeterministically seeded RNG (`thread_rng`, `from_entropy`,
    /// OS randomness) anywhere in the workspace.
    UnseededRng,
    /// Iteration over a `std::collections` hash container in a file not
    /// allowlisted with a justification for why the ordering cannot leak
    /// into digests, metrics snapshots, or wire payloads.
    HashIterOrder,
    /// A wire/diagnostic code enum whose variants are not fully covered
    /// by its encode (`as_str`) and decode (`parse`) tables.
    WireCodeCoverage,
    /// An allowlist entry that matched nothing, or carries no
    /// justification: the allowlist must stay exhaustive and explained.
    StaleAllow,
    /// An unbounded `mpsc::channel()` (backpressure hole), or a lock
    /// guard held across a blocking I/O call, in a file not allowlisted
    /// with a justification for why it cannot stall the serving path.
    UnboundedChannel,
    /// A direct `Catalog` mutation (`place`/`set_cached_fraction`)
    /// outside the `CatalogCoordinator` epoch API or the justified
    /// allowlist: drift state must never bypass epoch accounting.
    CatalogMutation,
    /// An `extern` block (raw C-ABI syscall binding) outside the
    /// justified allowlist: unsafe FFI shims live in one audited module
    /// (`csqp_net::poll`), never scattered through the workspace.
    RawSyscall,
    /// A bare `as`-cast narrowing a float to an integer or a wide integer
    /// to a narrower one inside bound/cost arithmetic, outside the
    /// justified allowlist: truncation must be explicit (checked or
    /// saturating helpers), never silent.
    NumericTruncation,
}

impl DiagCode {
    /// Stable kebab-case name (used by `csqp-check` output).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::RootNotDisplay => "root-not-display",
            DiagCode::BadArity => "bad-arity",
            DiagCode::DanglingChild => "dangling-child",
            DiagCode::SharedNode => "shared-node",
            DiagCode::IllegalAnnotation => "illegal-annotation",
            DiagCode::DuplicateScan => "duplicate-scan",
            DiagCode::SelectPlacement => "select-placement",
            DiagCode::JoinOverlap => "join-overlap",
            DiagCode::AggregateMismatch => "aggregate-mismatch",
            DiagCode::ScanCoverage => "scan-coverage",
            DiagCode::AnnotationCycle => "annotation-cycle",
            DiagCode::UnresolvedSite => "unresolved-site",
            DiagCode::PolicyViolation => "policy-violation",
            DiagCode::NegativeResource => "negative-resource",
            DiagCode::ResponseExceedsPhases => "response-exceeds-phases",
            DiagCode::NonMonotoneCost => "non-monotone-cost",
            DiagCode::CardinalityBound => "cardinality-bound",
            DiagCode::ConfigInvariant => "config-invariant",
            DiagCode::EventTimeRegression => "event-time-regression",
            DiagCode::TieBreakNondeterminism => "tie-break-nondeterminism",
            DiagCode::ProtocolStuck => "protocol-stuck",
            DiagCode::ProtocolDoubleReply => "protocol-double-reply",
            DiagCode::ProtocolWindowLeak => "protocol-window-leak",
            DiagCode::ProtocolWorkerLeak => "protocol-worker-leak",
            DiagCode::ProtocolSweepMissed => "protocol-sweep-missed",
            DiagCode::SystemStarvation => "system-starvation",
            DiagCode::SystemWorkerLeak => "system-worker-leak",
            DiagCode::SystemLostWakeup => "system-lost-wakeup",
            DiagCode::SystemSweepIncomplete => "system-sweep-incomplete",
            DiagCode::MemoFingerprint => "memo-fingerprint",
            DiagCode::MemoGeneration => "memo-generation",
            DiagCode::MemoCost => "memo-cost",
            DiagCode::CatalogStaleServed => "catalog-stale-served",
            DiagCode::CatalogEpochRegress => "catalog-epoch-regress",
            DiagCode::CatalogLagBound => "catalog-lag-bound",
            DiagCode::CatalogUnplaced => "catalog-unplaced",
            DiagCode::BoundViolated => "bound-violated",
            DiagCode::BoundOverflow => "bound-overflow",
            DiagCode::BoundKeyUnsound => "bound-key-unsound",
            DiagCode::WallClockUse => "wall-clock-use",
            DiagCode::UnseededRng => "unseeded-rng",
            DiagCode::HashIterOrder => "hash-iter-order",
            DiagCode::WireCodeCoverage => "wire-code-coverage",
            DiagCode::StaleAllow => "stale-allow",
            DiagCode::UnboundedChannel => "unbounded-channel",
            DiagCode::CatalogMutation => "catalog-mutation",
            DiagCode::RawSyscall => "raw-syscall",
            DiagCode::NumericTruncation => "numeric-truncation",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One checker finding: what invariant broke, where, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The invariant that failed.
    pub code: DiagCode,
    /// The offending node, when the finding is node-local.
    pub node: Option<NodeId>,
    /// Operator path from the root to the node (e.g.
    /// `display/join[0]/select`), when one could be computed.
    pub path: Option<String>,
    /// Human-readable explanation, including the offending annotation
    /// pair or values where applicable.
    pub detail: String,
}

impl Diagnostic {
    /// A plan-level diagnostic with no specific node.
    pub fn new(code: DiagCode, detail: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            node: None,
            path: None,
            detail: detail.into(),
        }
    }

    /// A node-local diagnostic; the node's path is computed from `plan`.
    pub fn at(code: DiagCode, plan: &Plan, node: NodeId, detail: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            node: Some(node),
            path: node_path(plan, node),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.code)?;
        match (&self.path, self.node) {
            (Some(p), _) => write!(f, " at {p}")?,
            (None, Some(n)) => write!(f, " at node {}", n.0)?,
            (None, None) => {}
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for Diagnostic {}

/// The operator path from the root to `node`, with child-slot indices on
/// binary operators: `display/join[0]/join[1]/scan`. `None` when `node`
/// is not reachable from the root.
pub fn node_path(plan: &Plan, node: NodeId) -> Option<String> {
    fn walk(plan: &Plan, at: NodeId, node: NodeId, acc: &mut String) -> bool {
        let entry_len = acc.len();
        let n = plan.node(at);
        let name = match n.op {
            crate::plan::LogicalOp::Display => "display",
            crate::plan::LogicalOp::Join => "join",
            crate::plan::LogicalOp::Select { .. } => "select",
            crate::plan::LogicalOp::Aggregate { .. } => "aggregate",
            crate::plan::LogicalOp::Scan { .. } => "scan",
        };
        if !acc.is_empty() {
            acc.push('/');
        }
        acc.push_str(name);
        if at == node {
            return true;
        }
        let base = acc.len();
        for (slot, c) in n.children.iter().enumerate() {
            let Some(c) = *c else { continue };
            if n.op.arity() == 2 {
                use fmt::Write;
                let _ = write!(acc, "[{slot}]");
            }
            if walk(plan, c, node, acc) {
                return true;
            }
            acc.truncate(base);
        }
        // Not under this subtree: drop this segment.
        acc.truncate(entry_len);
        false
    }
    let mut acc = String::new();
    if walk(plan, plan.root(), node, &mut acc) {
        Some(acc)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use crate::builder::JoinTree;
    use csqp_catalog::{JoinEdge, QuerySpec, RelId, Relation};

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    #[test]
    fn paths_name_the_route_from_the_root() {
        let q = chain(3);
        let plan = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        assert_eq!(node_path(&plan, plan.root()).as_deref(), Some("display"));
        let joins = plan.join_nodes();
        // Postorder: bottom join first. Left-deep: top join's child 0 is
        // the bottom join.
        assert_eq!(node_path(&plan, joins[1]).as_deref(), Some("display/join"));
        assert_eq!(
            node_path(&plan, joins[0]).as_deref(),
            Some("display/join[0]/join")
        );
        let scans = plan.scan_nodes();
        assert_eq!(
            node_path(&plan, scans[0]).as_deref(),
            Some("display/join[0]/join[0]/scan")
        );
    }

    #[test]
    fn unreachable_nodes_have_no_path() {
        let q = chain(2);
        let mut plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        let orphan = plan.push(crate::plan::PlanNode {
            op: crate::plan::LogicalOp::Scan { rel: RelId(0) },
            ann: Annotation::Client,
            children: [None, None],
        });
        assert_eq!(node_path(&plan, orphan), None);
    }

    #[test]
    fn diagnostics_render_code_path_and_detail() {
        let q = chain(2);
        let plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        let d = Diagnostic::at(
            DiagCode::AnnotationCycle,
            &plan,
            plan.join_nodes()[0],
            "inner relation ↔ consumer",
        );
        let s = d.to_string();
        assert!(s.contains("[annotation-cycle]"), "{s}");
        assert!(s.contains("display/join"), "{s}");
        assert!(s.contains("inner relation"), "{s}");
    }
}
