//! Plan constructors.
//!
//! [`JoinTree`] is the *shape* of a join order — a binary tree over base
//! relations. [`JoinTree::into_plan`] turns it into a full [`Plan`]:
//! a display on top, a scan per leaf (and a select over the scan where the
//! query carries a selection predicate), and uniform default annotations
//! that the caller (usually the optimizer) then mutates.

use csqp_catalog::{QuerySpec, RelId};

use crate::annotation::Annotation;
use crate::plan::{LogicalOp, NodeId, Plan, PlanNode};

/// A binary join-order tree over base relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTree {
    /// A base relation.
    Leaf(RelId),
    /// A join; left is the inner (build) input, right the outer (probe).
    Node(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// A leaf.
    pub fn leaf(rel: RelId) -> JoinTree {
        JoinTree::Leaf(rel)
    }

    /// An internal join node.
    pub fn join(inner: JoinTree, outer: JoinTree) -> JoinTree {
        JoinTree::Node(Box::new(inner), Box::new(outer))
    }

    /// A left-deep tree joining `order[0] ⋈ order[1] ⋈ …`, each earlier
    /// result the inner of the next join.
    pub fn left_deep(order: &[RelId]) -> JoinTree {
        assert!(!order.is_empty(), "empty join order");
        let mut t = JoinTree::leaf(order[0]);
        for &r in &order[1..] {
            t = JoinTree::join(t, JoinTree::leaf(r));
        }
        t
    }

    /// A balanced bushy tree over `order` (splitting each range in half).
    pub fn balanced(order: &[RelId]) -> JoinTree {
        assert!(!order.is_empty(), "empty join order");
        if order.len() == 1 {
            JoinTree::leaf(order[0])
        } else {
            let mid = order.len() / 2;
            JoinTree::join(Self::balanced(&order[..mid]), Self::balanced(&order[mid..]))
        }
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 1,
            JoinTree::Node(l, r) => l.leaves() + r.leaves(),
        }
    }

    /// Build the full plan. Every join gets `join_ann`, every scan
    /// `scan_ann`; selects (inserted above scans of relations with a
    /// selection predicate) get `producer` so they start glued to their
    /// scan. The display is always `client` (Table 1: all policies).
    pub fn into_plan(&self, query: &QuerySpec, join_ann: Annotation, scan_ann: Annotation) -> Plan {
        let mut plan = Plan::from_parts(Vec::new(), NodeId(0));
        let mut top = self.build(query, &mut plan, join_ann, scan_ann);
        if let Some(groups) = query.aggregate_groups {
            top = plan.push(PlanNode {
                op: LogicalOp::Aggregate { groups },
                ann: Annotation::Producer,
                children: [Some(top), None],
            });
        }
        let root = plan.push(PlanNode {
            op: LogicalOp::Display,
            ann: Annotation::Client,
            children: [Some(top), None],
        });
        let plan = Plan::from_parts(
            (0..plan.arena_len())
                .map(|i| plan.node(NodeId(i as u32)).clone())
                .collect(),
            root,
        );
        debug_assert_eq!(plan.validate_structure(query), Ok(()));
        plan
    }

    fn build(
        &self,
        query: &QuerySpec,
        plan: &mut Plan,
        join_ann: Annotation,
        scan_ann: Annotation,
    ) -> NodeId {
        match self {
            JoinTree::Leaf(rel) => {
                let scan = plan.push(PlanNode {
                    op: LogicalOp::Scan { rel: *rel },
                    ann: scan_ann,
                    children: [None, None],
                });
                if query.selection[rel.index()] < 1.0 {
                    plan.push(PlanNode {
                        op: LogicalOp::Select { rel: *rel },
                        ann: Annotation::Producer,
                        children: [Some(scan), None],
                    })
                } else {
                    scan
                }
            }
            JoinTree::Node(l, r) => {
                let li = l.build(query, plan, join_ann, scan_ann);
                let ri = r.build(query, plan, join_ann, scan_ann);
                plan.push(PlanNode {
                    op: LogicalOp::Join,
                    ann: join_ann,
                    children: [Some(li), Some(ri)],
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{JoinEdge, Relation};

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    #[test]
    fn left_deep_shape() {
        let q = chain(4);
        let order: Vec<RelId> = (0..4).map(RelId).collect();
        let t = JoinTree::left_deep(&order);
        assert_eq!(t.leaves(), 4);
        let p = t.into_plan(&q, Annotation::Consumer, Annotation::Client);
        p.validate_structure(&q).unwrap();
        assert_eq!(
            p.render_compact(),
            "(display (join:cons (join:cons (join:cons (scan R0:cl) (scan R1:cl)) \
             (scan R2:cl)) (scan R3:cl)))"
        );
    }

    #[test]
    fn balanced_shape() {
        let q = chain(4);
        let order: Vec<RelId> = (0..4).map(RelId).collect();
        let p =
            JoinTree::balanced(&order).into_plan(&q, Annotation::InnerRel, Annotation::PrimaryCopy);
        p.validate_structure(&q).unwrap();
        assert_eq!(
            p.render_compact(),
            "(display (join:inner (join:inner (scan R0:pc) (scan R1:pc)) \
             (join:inner (scan R2:pc) (scan R3:pc))))"
        );
    }

    #[test]
    fn selections_are_inserted_over_scans() {
        let q = chain(2).with_selection(RelId(1), 0.1);
        let p = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        p.validate_structure(&q).unwrap();
        assert_eq!(p.select_nodes().len(), 1);
        assert!(p.render_compact().contains("(select R1:prod (scan R1:cl))"));
    }

    #[test]
    #[should_panic(expected = "empty join order")]
    fn empty_order_rejected() {
        JoinTree::left_deep(&[]);
    }
}
