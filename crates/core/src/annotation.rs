//! Logical site annotations (§2.1).
//!
//! "Site selection for operators is specified by annotating each operator
//! with the location at which the operator is to run. These annotations
//! refer to logical sites, such as 'client', 'primary copy', 'consumer',
//! 'producer', etc., and are not bound to physical machines until query
//! execution time."

use std::fmt;

/// A logical site annotation on a plan operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// Run at the site where the query was submitted.
    Client,
    /// Run at the site of the operator consuming this operator's output.
    Consumer,
    /// Run at the site of this (unary) operator's producer, i.e. its child.
    Producer,
    /// Run at the site producing the left-hand (build) input of a join.
    InnerRel,
    /// Run at the site producing the right-hand (probe) input of a join.
    OuterRel,
    /// Run at the server holding the primary copy of the scanned relation.
    PrimaryCopy,
}

impl Annotation {
    /// True when the annotation's referent is the operator's parent.
    #[inline]
    pub fn points_up(self) -> bool {
        self == Annotation::Consumer
    }

    /// The child index this annotation points at, if any: `Producer` and
    /// `InnerRel` point at child 0, `OuterRel` at child 1.
    #[inline]
    pub fn points_down_at(self) -> Option<usize> {
        match self {
            Annotation::Producer | Annotation::InnerRel => Some(0),
            Annotation::OuterRel => Some(1),
            _ => None,
        }
    }

    /// The paper's name for this annotation.
    pub fn as_str(self) -> &'static str {
        match self {
            Annotation::Client => "client",
            Annotation::Consumer => "consumer",
            Annotation::Producer => "producer",
            Annotation::InnerRel => "inner relation",
            Annotation::OuterRel => "outer relation",
            Annotation::PrimaryCopy => "primary copy",
        }
    }

    /// Every annotation, in declaration order.
    pub const ALL: [Annotation; 6] = [
        Annotation::Client,
        Annotation::Consumer,
        Annotation::Producer,
        Annotation::InnerRel,
        Annotation::OuterRel,
        Annotation::PrimaryCopy,
    ];

    /// Parse a compact tag produced by [`Annotation::tag`] (the plan JSON
    /// encoding).
    pub fn from_tag(tag: &str) -> Option<Annotation> {
        Annotation::ALL.into_iter().find(|a| a.tag() == tag)
    }

    /// A compact tag used in one-line plan renderings.
    pub fn tag(self) -> &'static str {
        match self {
            Annotation::Client => "cl",
            Annotation::Consumer => "cons",
            Annotation::Producer => "prod",
            Annotation::InnerRel => "inner",
            Annotation::OuterRel => "outer",
            Annotation::PrimaryCopy => "pc",
        }
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointing_directions() {
        assert!(Annotation::Consumer.points_up());
        assert!(!Annotation::Producer.points_up());
        assert_eq!(Annotation::Producer.points_down_at(), Some(0));
        assert_eq!(Annotation::InnerRel.points_down_at(), Some(0));
        assert_eq!(Annotation::OuterRel.points_down_at(), Some(1));
        assert_eq!(Annotation::Client.points_down_at(), None);
        assert_eq!(Annotation::PrimaryCopy.points_down_at(), None);
        assert_eq!(Annotation::Consumer.points_down_at(), None);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Annotation::InnerRel.to_string(), "inner relation");
        assert_eq!(Annotation::PrimaryCopy.to_string(), "primary copy");
    }
}
