//! Cooperative cancellation and per-query deadlines.
//!
//! The paper binds site annotations at *runtime* because client/server
//! state changes under the optimizer's feet (§2.1); faults are the
//! extreme form of that state change. A [`CancelToken`] is the seam the
//! serving stack uses to stop dead work promptly: a connection thread
//! cancels the token when its client vanishes, and the optimizer/runner
//! loops probe the token between search steps and simulated-engine
//! phases, releasing the worker instead of finishing a query nobody will
//! read.
//!
//! Tokens are cheap (`AtomicBool` + an optional [`Instant`] deadline) and
//! shared by `Arc`; probing with no deadline is a single relaxed load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Why a guarded computation was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The token was explicitly cancelled (client disconnect, shutdown).
    Cancelled,
    /// The query's deadline passed before the work completed.
    DeadlineExceeded,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// A shared stop signal: an explicit cancel flag plus an optional
/// wall-clock deadline.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with an optional deadline and the cancel flag clear.
    pub fn new(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline,
        }
    }

    /// A token that never reports a stop reason (the default for
    /// unguarded entry points).
    pub fn inert() -> CancelToken {
        CancelToken::new(None)
    }

    /// A token that stops the guarded work once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken::new(Some(deadline))
    }

    /// A token whose deadline has already passed: the first probe reports
    /// [`StopReason::DeadlineExceeded`]. Tests use this instead of
    /// sampling `Instant::now()` themselves, so the wall clock stays
    /// confined to this module (see the `csqp-lint` allowlist).
    pub fn expired() -> CancelToken {
        CancelToken::with_deadline(Instant::now())
    }

    /// Request cancellation; guarded loops observe it at their next probe.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The reason guarded work should stop *now*, if any. Explicit
    /// cancellation wins over an expired deadline (a vanished client is
    /// a stronger signal than a late one).
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(StopReason::DeadlineExceeded),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inert_token_never_stops() {
        let t = CancelToken::inert();
        assert_eq!(t.stop_reason(), None);
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_is_observed() {
        let t = CancelToken::inert();
        t.cancel();
        assert_eq!(t.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn expired_deadline_stops() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.stop_reason(), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_does_not_stop_yet() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(t.stop_reason(), None);
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.stop_reason(), Some(StopReason::Cancelled));
    }
}
