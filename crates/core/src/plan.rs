//! Annotated query plans.
//!
//! "Execution plans for such queries can be represented as binary trees in
//! which the nodes are query operators and the edges represent
//! producer-consumer relationships between the operators. A query plan
//! specifies the ordering of operators, the placement of operators at
//! sites, and the methods to be employed for executing each operator."
//! (§2.1)
//!
//! Plans live in an arena ([`Plan`]); nodes are addressed by [`NodeId`].
//! The arena representation makes the optimizer's tree surgery cheap and
//! keeps clones compact.

use std::fmt;

use csqp_catalog::{QuerySpec, RelId, RelSet};
use csqp_json::{Json, JsonError};

use crate::annotation::Annotation;
use crate::diag::{DiagCode, Diagnostic};

/// Index of a node within its [`Plan`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// As a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A query operator (§2.1). The join method is always hybrid hash
/// (§3.2.2: "All joins are processed using hybrid hashing"), with child 0
/// the inner (build) input and child 1 the outer (probe) input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Root: present results at the query site.
    Display,
    /// Binary equijoin (hybrid hash).
    Join,
    /// Apply the predicate of base relation `rel` (selectivity from the
    /// [`QuerySpec`]).
    Select {
        /// The relation whose predicate this select applies.
        rel: RelId,
    },
    /// Grouped aggregation of the final result (footnote 4: aggregations
    /// are annotated like selections). Always sits directly under the
    /// display.
    Aggregate {
        /// Number of output groups.
        groups: u64,
    },
    /// Produce all tuples of a base relation.
    Scan {
        /// The scanned relation.
        rel: RelId,
    },
}

impl LogicalOp {
    /// Number of children this operator must have.
    #[inline]
    pub fn arity(self) -> usize {
        match self {
            LogicalOp::Display | LogicalOp::Select { .. } | LogicalOp::Aggregate { .. } => 1,
            LogicalOp::Join => 2,
            LogicalOp::Scan { .. } => 0,
        }
    }

    /// Structurally legal annotations for this operator kind, independent
    /// of policy (the columns of Table 1 are subsets of these).
    pub fn legal_annotations(self) -> &'static [Annotation] {
        match self {
            LogicalOp::Display => &[Annotation::Client],
            LogicalOp::Join => &[
                Annotation::Consumer,
                Annotation::InnerRel,
                Annotation::OuterRel,
            ],
            LogicalOp::Select { .. } | LogicalOp::Aggregate { .. } => {
                &[Annotation::Consumer, Annotation::Producer]
            }
            LogicalOp::Scan { .. } => &[Annotation::Client, Annotation::PrimaryCopy],
        }
    }
}

/// One node of a plan: operator, annotation, children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// The operator.
    pub op: LogicalOp,
    /// Its logical site annotation.
    pub ann: Annotation,
    /// Children (`children[..op.arity()]` are meaningful).
    pub children: [Option<NodeId>; 2],
}

impl PlanNode {
    /// Iterate over the present children.
    pub fn child_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.children.iter().flatten().copied()
    }
}

/// An annotated query plan: an arena of nodes plus the root (display).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    nodes: Vec<PlanNode>,
    root: NodeId,
}

impl Plan {
    /// Build a plan from raw parts. `validate_structure` should be called
    /// (and is, by all public constructors) before use.
    pub fn from_parts(nodes: Vec<PlanNode>, root: NodeId) -> Plan {
        Plan { nodes, root }
    }

    /// The root node id (always the display operator).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Shared access to a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut PlanNode {
        &mut self.nodes[id.index()]
    }

    /// Number of nodes in the arena (including any unreachable ones left
    /// by tree surgery; see [`Plan::compact`]).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Append a node, returning its id.
    pub fn push(&mut self, node: PlanNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Ids of all nodes reachable from the root, in postorder (children
    /// before parents; child 0 before child 1).
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.postorder_from(self.root, &mut out);
        out
    }

    fn postorder_from(&self, id: NodeId, out: &mut Vec<NodeId>) {
        for c in self.node(id).child_ids() {
            self.postorder_from(c, out);
        }
        out.push(id);
    }

    /// Map from node to its parent (and which child slot it occupies).
    pub fn parents(&self) -> Vec<Option<(NodeId, usize)>> {
        let mut parents = vec![None; self.nodes.len()];
        for id in self.postorder() {
            for (slot, c) in self.node(id).children.iter().enumerate() {
                if let Some(c) = c {
                    parents[c.index()] = Some((id, slot));
                }
            }
        }
        parents
    }

    /// Ids of all reachable join nodes.
    pub fn join_nodes(&self) -> Vec<NodeId> {
        self.postorder()
            .into_iter()
            .filter(|&id| matches!(self.node(id).op, LogicalOp::Join))
            .collect()
    }

    /// Ids of all reachable scan nodes.
    pub fn scan_nodes(&self) -> Vec<NodeId> {
        self.postorder()
            .into_iter()
            .filter(|&id| matches!(self.node(id).op, LogicalOp::Scan { .. }))
            .collect()
    }

    /// Ids of all reachable select nodes.
    pub fn select_nodes(&self) -> Vec<NodeId> {
        self.postorder()
            .into_iter()
            .filter(|&id| matches!(self.node(id).op, LogicalOp::Select { .. }))
            .collect()
    }

    /// The set of base relations under `id`.
    pub fn rel_set(&self, id: NodeId) -> RelSet {
        let n = self.node(id);
        match n.op {
            LogicalOp::Scan { rel } | LogicalOp::Select { rel } => {
                let mut s = RelSet::single(rel);
                for c in n.child_ids() {
                    s = s.union(self.rel_set(c));
                }
                s
            }
            _ => n
                .child_ids()
                .fold(RelSet::EMPTY, |s, c| s.union(self.rel_set(c))),
        }
    }

    /// Drop unreachable arena entries, renumbering node ids.
    pub fn compact(&self) -> Plan {
        let order = self.postorder();
        let mut remap = vec![None; self.nodes.len()];
        for (new, old) in order.iter().enumerate() {
            remap[old.index()] = Some(NodeId(new as u32));
        }
        let mut nodes = Vec::with_capacity(order.len());
        for old in &order {
            let mut n = self.node(*old).clone();
            for c in n.children.iter_mut() {
                // Children of reachable nodes are reachable, so the remap
                // entry is always present.
                *c = c.and_then(|cid| remap[cid.index()]);
            }
            nodes.push(n);
        }
        // Postorder visits the root last, so it lands in the final slot.
        Plan {
            root: NodeId((order.len() - 1) as u32),
            nodes,
        }
    }

    /// Validate structural invariants against the query:
    ///
    /// * the root is a display with `client` annotation;
    /// * every operator has its arity and a structurally legal annotation;
    /// * every base relation of the query is scanned exactly once;
    /// * select nodes sit over the scan of their own relation;
    /// * join children cover disjoint relation sets.
    pub fn validate_structure(&self, query: &QuerySpec) -> Result<(), Diagnostic> {
        // Out-of-arena references would panic the arena walks below;
        // catch them on the raw node vector before dereferencing any id.
        if self.root.index() >= self.nodes.len() {
            return Err(Diagnostic::new(
                DiagCode::DanglingChild,
                format!(
                    "root id {} is outside the {}-node arena",
                    self.root.0,
                    self.nodes.len()
                ),
            ));
        }
        for (idx, n) in self.nodes.iter().enumerate() {
            for c in n.child_ids() {
                if c.index() >= self.nodes.len() {
                    return Err(Diagnostic::new(
                        DiagCode::DanglingChild,
                        format!(
                            "node {idx} references child {} outside the {}-node arena",
                            c.0,
                            self.nodes.len()
                        ),
                    ));
                }
            }
        }
        let root = self.node(self.root);
        if root.op != LogicalOp::Display {
            return Err(Diagnostic::new(
                DiagCode::RootNotDisplay,
                format!("root is {:?}, not a display operator", root.op),
            ));
        }
        let mut scanned = RelSet::EMPTY;
        for id in self.postorder() {
            let n = self.node(id);
            let have = n.child_ids().count();
            if have != n.op.arity() {
                return Err(Diagnostic::at(
                    DiagCode::BadArity,
                    self,
                    id,
                    format!("{:?} has {have} children, wants {}", n.op, n.op.arity()),
                ));
            }
            if !n.op.legal_annotations().contains(&n.ann) {
                return Err(Diagnostic::at(
                    DiagCode::IllegalAnnotation,
                    self,
                    id,
                    format!("{:?} has illegal annotation '{}'", n.op, n.ann),
                ));
            }
            // Arity is checked above, so the child slots read below are
            // occupied; `if let` keeps the traversal panic-free anyway.
            match n.op {
                LogicalOp::Scan { rel } => {
                    if scanned.contains(rel) {
                        return Err(Diagnostic::at(
                            DiagCode::DuplicateScan,
                            self,
                            id,
                            format!("{rel} scanned twice"),
                        ));
                    }
                    scanned = scanned.union(RelSet::single(rel));
                }
                LogicalOp::Select { rel } => {
                    if let Some(child) = n.children[0] {
                        if !matches!(self.node(child).op, LogicalOp::Scan { rel: r } if r == rel) {
                            return Err(Diagnostic::at(
                                DiagCode::SelectPlacement,
                                self,
                                id,
                                format!("select on {rel} must sit directly over its scan"),
                            ));
                        }
                    }
                }
                LogicalOp::Join => {
                    if let (Some(lc), Some(rc)) = (n.children[0], n.children[1]) {
                        let l = self.rel_set(lc);
                        let r = self.rel_set(rc);
                        if !l.is_disjoint(r) {
                            return Err(Diagnostic::at(
                                DiagCode::JoinOverlap,
                                self,
                                id,
                                format!("children cover overlapping relation sets {l:?} and {r:?}"),
                            ));
                        }
                    }
                }
                LogicalOp::Aggregate { groups } => {
                    if groups == 0 {
                        return Err(Diagnostic::at(
                            DiagCode::AggregateMismatch,
                            self,
                            id,
                            "aggregate with zero groups",
                        ));
                    }
                    // Aggregates sit directly under the display: the
                    // parent check happens from the display side below.
                }
                LogicalOp::Display => {}
            }
            if n.op == LogicalOp::Display {
                if let Some(child) = n.children[0] {
                    let child_is_agg = matches!(self.node(child).op, LogicalOp::Aggregate { .. });
                    match query.aggregate_groups {
                        Some(g) => {
                            if !matches!(self.node(child).op, LogicalOp::Aggregate { groups } if groups == g)
                            {
                                return Err(Diagnostic::at(
                                    DiagCode::AggregateMismatch,
                                    self,
                                    id,
                                    format!(
                                        "query aggregates into {g} groups but the plan root \
                                         lacks the matching aggregate operator"
                                    ),
                                ));
                            }
                        }
                        None => {
                            if child_is_agg {
                                return Err(Diagnostic::at(
                                    DiagCode::AggregateMismatch,
                                    self,
                                    id,
                                    "plan aggregates but the query does not",
                                ));
                            }
                        }
                    }
                }
            }
        }
        if scanned != query.all_rels() {
            return Err(Diagnostic::new(
                DiagCode::ScanCoverage,
                format!(
                    "plan scans {:?}, query needs {:?}",
                    scanned,
                    query.all_rels()
                ),
            ));
        }
        Ok(())
    }

    /// Serialize to JSON — the persistence format for pre-compiled plans
    /// (§5: "it is, therefore, desirable to precompile a query"). The
    /// logical annotations survive the round trip, so a stored plan can
    /// be re-bound under whatever placement holds at execution time.
    ///
    /// ```
    /// # use csqp_core::{Annotation, JoinTree};
    /// # use csqp_catalog::{JoinEdge, QuerySpec, RelId, Relation};
    /// # let query = QuerySpec::new(
    /// #     vec![Relation::benchmark(RelId(0), "A"), Relation::benchmark(RelId(1), "B")],
    /// #     vec![JoinEdge { a: RelId(0), b: RelId(1), selectivity: 1e-4 }],
    /// # );
    /// let plan = JoinTree::left_deep(&[RelId(0), RelId(1)])
    ///     .into_plan(&query, Annotation::InnerRel, Annotation::PrimaryCopy);
    /// let restored = csqp_core::Plan::from_json(&plan.to_json()).unwrap();
    /// assert_eq!(plan, restored);
    /// ```
    pub fn to_json(&self) -> String {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let op = match n.op {
                    LogicalOp::Display => csqp_json::obj(vec![("kind", Json::from("display"))]),
                    LogicalOp::Join => csqp_json::obj(vec![("kind", Json::from("join"))]),
                    LogicalOp::Select { rel } => csqp_json::obj(vec![
                        ("kind", Json::from("select")),
                        ("rel", Json::from(u64::from(rel.0))),
                    ]),
                    LogicalOp::Aggregate { groups } => csqp_json::obj(vec![
                        ("kind", Json::from("aggregate")),
                        ("groups", Json::from(groups)),
                    ]),
                    LogicalOp::Scan { rel } => csqp_json::obj(vec![
                        ("kind", Json::from("scan")),
                        ("rel", Json::from(u64::from(rel.0))),
                    ]),
                };
                let children = n
                    .children
                    .iter()
                    .map(|c| match c {
                        Some(id) => Json::from(u64::from(id.0)),
                        None => Json::Null,
                    })
                    .collect::<Vec<_>>();
                csqp_json::obj(vec![
                    ("op", op),
                    ("ann", Json::from(n.ann.tag())),
                    ("children", Json::Arr(children)),
                ])
            })
            .collect::<Vec<_>>();
        csqp_json::obj(vec![
            ("nodes", Json::Arr(nodes)),
            ("root", Json::from(u64::from(self.root.0))),
        ])
        .render()
    }

    /// Deserialize a plan stored with [`Plan::to_json`]. Callers should
    /// run [`Plan::validate_structure`] against their query afterwards —
    /// a stored plan may predate schema changes.
    pub fn from_json(json: &str) -> Result<Plan, JsonError> {
        let doc = Json::parse(json)?;
        let node_docs = doc
            .field("nodes")?
            .as_arr()
            .ok_or_else(|| JsonError::decode("nodes", "expected an array"))?;
        let node_id = |v: &Json, path: String| -> Result<NodeId, JsonError> {
            let raw = v
                .as_u64()
                .ok_or_else(|| JsonError::decode(path.clone(), "expected a node index"))?;
            if raw as usize >= node_docs.len() {
                return Err(JsonError::decode(
                    path,
                    format!(
                        "node index {raw} out of range (arena has {})",
                        node_docs.len()
                    ),
                ));
            }
            Ok(NodeId(raw as u32))
        };
        let mut nodes = Vec::with_capacity(node_docs.len());
        for (i, nd) in node_docs.iter().enumerate() {
            let at = |f: &str| format!("nodes[{i}].{f}");
            let opd = nd
                .field("op")
                .map_err(|_| JsonError::decode(at("op"), "missing field"))?;
            let kind = opd
                .field("kind")
                .map_err(|_| JsonError::decode(at("op.kind"), "missing field"))?
                .as_str()
                .ok_or_else(|| JsonError::decode(at("op.kind"), "expected a string"))?;
            let rel_of = |opd: &Json| -> Result<RelId, JsonError> {
                let r = opd
                    .field("rel")
                    .map_err(|_| JsonError::decode(at("op.rel"), "missing field"))?
                    .as_u64()
                    .ok_or_else(|| JsonError::decode(at("op.rel"), "expected an integer"))?;
                u32::try_from(r)
                    .map(RelId)
                    .map_err(|_| JsonError::decode(at("op.rel"), "relation id out of range"))
            };
            let op = match kind {
                "display" => LogicalOp::Display,
                "join" => LogicalOp::Join,
                "select" => LogicalOp::Select { rel: rel_of(opd)? },
                "scan" => LogicalOp::Scan { rel: rel_of(opd)? },
                "aggregate" => {
                    let groups = opd
                        .field("groups")
                        .map_err(|_| JsonError::decode(at("op.groups"), "missing field"))?
                        .as_u64()
                        .ok_or_else(|| JsonError::decode(at("op.groups"), "expected an integer"))?;
                    LogicalOp::Aggregate { groups }
                }
                other => {
                    return Err(JsonError::decode(
                        at("op.kind"),
                        format!("unknown operator kind `{other}`"),
                    ))
                }
            };
            let tag = nd
                .field("ann")
                .map_err(|_| JsonError::decode(at("ann"), "missing field"))?
                .as_str()
                .ok_or_else(|| JsonError::decode(at("ann"), "expected a string"))?;
            let ann = Annotation::from_tag(tag).ok_or_else(|| {
                JsonError::decode(at("ann"), format!("unknown annotation tag `{tag}`"))
            })?;
            let cd = nd
                .field("children")
                .map_err(|_| JsonError::decode(at("children"), "missing field"))?
                .as_arr()
                .ok_or_else(|| JsonError::decode(at("children"), "expected an array"))?;
            if cd.len() != 2 {
                return Err(JsonError::decode(
                    at("children"),
                    format!("expected 2 child slots, got {}", cd.len()),
                ));
            }
            let mut children = [None, None];
            for (slot, c) in cd.iter().enumerate() {
                if !c.is_null() {
                    children[slot] = Some(node_id(c, format!("nodes[{i}].children[{slot}]"))?);
                }
            }
            nodes.push(PlanNode { op, ann, children });
        }
        let root = node_id(doc.field("root")?, "root".to_string())?;
        Ok(Plan { nodes, root })
    }

    /// One-line s-expression rendering, e.g.
    /// `(display (join:cons (scan R0:pc) (scan R1:cl)))`.
    pub fn render_compact(&self) -> String {
        let mut s = String::new();
        self.render_node(self.root, &mut s);
        s
    }

    fn render_node(&self, id: NodeId, out: &mut String) {
        use fmt::Write;
        let n = self.node(id);
        // A missing child (arity violation) renders as `?` rather than
        // panicking — diagnostics embed these renderings.
        let child = |out: &mut String, slot: usize| match n.children[slot] {
            Some(c) => self.render_node(c, out),
            None => out.push('?'),
        };
        match n.op {
            LogicalOp::Display => {
                out.push_str("(display ");
                child(out, 0);
                out.push(')');
            }
            LogicalOp::Join => {
                let _ = write!(out, "(join:{} ", n.ann.tag());
                child(out, 0);
                out.push(' ');
                child(out, 1);
                out.push(')');
            }
            LogicalOp::Select { rel } => {
                let _ = write!(out, "(select {rel}:{} ", n.ann.tag());
                child(out, 0);
                out.push(')');
            }
            LogicalOp::Aggregate { groups } => {
                let _ = write!(out, "(agg {groups}:{} ", n.ann.tag());
                child(out, 0);
                out.push(')');
            }
            LogicalOp::Scan { rel } => {
                let _ = write!(out, "(scan {rel}:{})", n.ann.tag());
            }
        }
    }

    /// Multi-line tree rendering with annotations, for humans.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_tree_node(self.root, "", true, true, &mut out);
        out
    }

    fn render_tree_node(&self, id: NodeId, prefix: &str, last: bool, root: bool, out: &mut String) {
        use fmt::Write;
        let n = self.node(id);
        let connector = if root {
            ""
        } else if last {
            "└─ "
        } else {
            "├─ "
        };
        let label = match n.op {
            LogicalOp::Display => "display".to_string(),
            LogicalOp::Join => "join".to_string(),
            LogicalOp::Select { rel } => format!("select {rel}"),
            LogicalOp::Aggregate { groups } => format!("aggregate[{groups}]"),
            LogicalOp::Scan { rel } => format!("scan {rel}"),
        };
        let _ = writeln!(out, "{prefix}{connector}{label} [{}]", n.ann);
        let kids: Vec<NodeId> = n.child_ids().collect();
        let child_prefix = if root {
            String::new()
        } else if last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}│  ")
        };
        for (i, c) in kids.iter().enumerate() {
            self.render_tree_node(*c, &child_prefix, i + 1 == kids.len(), false, out);
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::JoinTree;
    use csqp_catalog::{JoinEdge, Relation};

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn two_way_plan() -> (QuerySpec, Plan) {
        let q = chain(2);
        let plan = JoinTree::join(JoinTree::leaf(RelId(0)), JoinTree::leaf(RelId(1))).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        (q, plan)
    }

    #[test]
    fn structure_of_two_way_plan() {
        let (q, plan) = two_way_plan();
        plan.validate_structure(&q).unwrap();
        assert_eq!(plan.join_nodes().len(), 1);
        assert_eq!(plan.scan_nodes().len(), 2);
        assert_eq!(plan.rel_set(plan.root()), q.all_rels());
        assert_eq!(
            plan.render_compact(),
            "(display (join:cons (scan R0:cl) (scan R1:cl)))"
        );
    }

    #[test]
    fn postorder_visits_children_first() {
        let (_, plan) = two_way_plan();
        let order = plan.postorder();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for id in &order {
            for c in plan.node(*id).child_ids() {
                assert!(pos(c) < pos(*id));
            }
        }
        assert_eq!(*order.last().unwrap(), plan.root());
    }

    #[test]
    fn parents_map() {
        let (_, plan) = two_way_plan();
        let parents = plan.parents();
        assert!(parents[plan.root().index()].is_none());
        let join = plan.join_nodes()[0];
        assert_eq!(parents[join.index()], Some((plan.root(), 0)));
        for (slot, scan) in plan.scan_nodes().into_iter().enumerate() {
            let (p, s) = parents[scan.index()].unwrap();
            assert_eq!(p, join);
            assert_eq!(s, slot);
        }
    }

    #[test]
    fn compact_drops_garbage() {
        let (q, mut plan) = two_way_plan();
        // Push an unreachable node.
        plan.push(PlanNode {
            op: LogicalOp::Scan { rel: RelId(0) },
            ann: Annotation::Client,
            children: [None, None],
        });
        assert_eq!(plan.arena_len(), 5);
        let c = plan.compact();
        assert_eq!(c.arena_len(), 4);
        c.validate_structure(&q).unwrap();
        assert_eq!(c.render_compact(), plan.render_compact());
    }

    #[test]
    fn validation_catches_double_scan() {
        let q = chain(2);
        let mut plan = Plan::from_parts(Vec::new(), NodeId(0));
        let s0 = plan.push(PlanNode {
            op: LogicalOp::Scan { rel: RelId(0) },
            ann: Annotation::Client,
            children: [None, None],
        });
        let s1 = plan.push(PlanNode {
            op: LogicalOp::Scan { rel: RelId(0) },
            ann: Annotation::Client,
            children: [None, None],
        });
        let j = plan.push(PlanNode {
            op: LogicalOp::Join,
            ann: Annotation::Consumer,
            children: [Some(s0), Some(s1)],
        });
        let d = plan.push(PlanNode {
            op: LogicalOp::Display,
            ann: Annotation::Client,
            children: [Some(j), None],
        });
        let plan = Plan::from_parts(
            (0..plan.arena_len())
                .map(|i| plan.node(NodeId(i as u32)).clone())
                .collect(),
            d,
        );
        let err = plan.validate_structure(&q).unwrap_err();
        assert!(
            matches!(err.code, DiagCode::DuplicateScan | DiagCode::JoinOverlap),
            "{err}"
        );
    }

    #[test]
    fn validation_catches_illegal_annotation() {
        let (q, mut plan) = two_way_plan();
        let scan = plan.scan_nodes()[0];
        plan.node_mut(scan).ann = Annotation::Consumer;
        let err = plan.validate_structure(&q).unwrap_err();
        assert_eq!(err.code, DiagCode::IllegalAnnotation, "{err}");
        assert!(err.to_string().contains("illegal annotation"), "{err}");
    }

    #[test]
    fn tree_rendering_mentions_all_operators() {
        let (_, plan) = two_way_plan();
        let t = plan.render_tree();
        assert!(t.contains("display [client]"));
        assert!(t.contains("join [consumer]"));
        assert!(t.contains("scan R0 [client]"));
        assert!(t.contains("scan R1 [client]"));
    }
}
