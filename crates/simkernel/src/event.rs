//! The future event list.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number makes the
//! ordering of same-time events deterministic (FIFO in scheduling order),
//! which keeps whole simulation runs reproducible for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event carrying an arbitrary payload `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future event list.
///
/// Events popped from the queue are monotonically non-decreasing in time;
/// ties are broken by insertion order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time (the time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a modeling bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "EventQueue::schedule: event at {at:?} is before now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            payload,
        });
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "event heap produced time travel");
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.now(), SimTime(20));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(42), i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_millis(1), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(1_000_000));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(7), 1u8);
        q.schedule(SimTime(3), 2u8);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
    }
}
