//! A small, deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the reproduction's stand-in for the CSIM toolkit used by the
//! paper's simulator. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer nanosecond virtual time,
//! * [`EventQueue`] — a stable (FIFO-tie-broken) future event list,
//! * [`FifoServer`] — a single-server FIFO queueing resource with
//!   utilization accounting (used for CPUs and the network link),
//! * [`stats`] — sample statistics with 90% confidence intervals, matching
//!   the paper's experimental methodology ("90% confidence intervals for all
//!   results presented were within 5%"),
//! * [`rng`] — seeded random-number helpers so every simulation run is
//!   reproducible bit-for-bit.
//!
//! The kernel is intentionally single-threaded: determinism matters more
//! than wall-clock speed for a simulation study, and the workloads of the
//! paper (hundreds of thousands of events) complete in milliseconds.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use resource::FifoServer;
pub use time::{SimDuration, SimTime};
