//! Single-server FIFO queueing resources.
//!
//! The paper models both the CPU of every site and the network as FIFO
//! queues (§3.2.2). [`FifoServer`] implements that: requests are served one
//! at a time in arrival order; the caller is told when each request
//! completes and schedules the completion on its event queue.
//!
//! The resource does not own the event queue — the driving simulation does.
//! The protocol is:
//!
//! 1. `submit(now, token, service)` — returns `Some((finish, token))` when
//!    the request enters service immediately; the caller schedules a
//!    completion event at `finish`. Returns `None` when the request queued
//!    behind others.
//! 2. On each completion event, call `finish_current(now)` to retire the
//!    request in service, then repeatedly the returned next request (if
//!    any) has already been moved into service and its completion time is
//!    returned for scheduling.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// A queued request: an opaque token plus its service demand.
#[derive(Debug, Clone)]
struct Request<T> {
    token: T,
    service: SimDuration,
}

/// A single-server FIFO queue with utilization accounting.
#[derive(Debug)]
pub struct FifoServer<T> {
    /// Request currently in service, if any.
    in_service: Option<Request<T>>,
    queue: VecDeque<Request<T>>,
    busy: SimDuration,
    served: u64,
    /// Sum of (completion - submission) over all served requests.
    total_latency: SimDuration,
    /// Submission times ride along so latency can be accounted.
    submit_times: VecDeque<SimTime>,
    in_service_submitted: Option<SimTime>,
    in_service_started: Option<SimTime>,
}

impl<T> Default for FifoServer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FifoServer<T> {
    /// Create an idle server.
    pub fn new() -> Self {
        FifoServer {
            in_service: None,
            queue: VecDeque::new(),
            busy: SimDuration::ZERO,
            served: 0,
            total_latency: SimDuration::ZERO,
            submit_times: VecDeque::new(),
            in_service_submitted: None,
            in_service_started: None,
        }
    }

    /// Submit a request with the given service demand.
    ///
    /// Returns `Some((finish_time, &token))` if the request entered service
    /// immediately (the caller must schedule a completion event at
    /// `finish_time`); `None` if it queued.
    pub fn submit(&mut self, now: SimTime, token: T, service: SimDuration) -> Option<SimTime> {
        let req = Request { token, service };
        if self.in_service.is_none() {
            let finish = now + service;
            self.in_service = Some(req);
            self.in_service_submitted = Some(now);
            self.in_service_started = Some(now);
            Some(finish)
        } else {
            self.queue.push_back(req);
            self.submit_times.push_back(now);
            None
        }
    }

    /// Retire the request in service (called on its completion event).
    ///
    /// Returns `(completed_token, next)` where `next` is
    /// `Some((finish_time, token_ref))` when a queued request has now
    /// entered service. The caller schedules its completion.
    // Invariant panics, not error paths: the three in-service slots and
    // the submit-time queue move in lockstep by construction, and calling
    // `finish_current` on an idle server is a caller bug the simulator
    // cannot recover from mid-run.
    #[allow(clippy::expect_used)]
    pub fn finish_current(&mut self, now: SimTime) -> (T, Option<SimTime>) {
        let done = self
            .in_service
            .take()
            .expect("FifoServer::finish_current called while idle");
        let started = self
            .in_service_started
            .take()
            .expect("in-service bookkeeping out of sync");
        let submitted = self
            .in_service_submitted
            .take()
            .expect("in-service bookkeeping out of sync");
        debug_assert_eq!(now, started + done.service, "completion at wrong time");
        self.busy += done.service;
        self.served += 1;
        self.total_latency += now.since(submitted);

        let next_finish = if let Some(next) = self.queue.pop_front() {
            let sub = self
                .submit_times
                .pop_front()
                .expect("queue bookkeeping out of sync");
            let finish = now + next.service;
            self.in_service = Some(next);
            self.in_service_submitted = Some(sub);
            self.in_service_started = Some(now);
            Some(finish)
        } else {
            None
        };
        (done.token, next_finish)
    }

    /// Token of the request currently in service.
    pub fn current(&self) -> Option<&T> {
        self.in_service.as_ref().map(|r| &r.token)
    }

    /// Number of requests waiting (excluding the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is in service or queued.
    pub fn is_idle(&self) -> bool {
        self.in_service.is_none() && self.queue.is_empty()
    }

    /// Total busy time accumulated so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of requests fully served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean latency (queueing + service) of served requests.
    pub fn mean_latency(&self) -> Option<SimDuration> {
        if self.served == 0 {
            None
        } else {
            Some(self.total_latency / self.served)
        }
    }

    /// Utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / now.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_fifo() {
        let mut s: FifoServer<&str> = FifoServer::new();
        let t0 = SimTime::ZERO;
        let fin_a = s.submit(t0, "a", SimDuration::from_millis(10));
        assert_eq!(fin_a, Some(SimTime(10_000_000)));
        assert!(s.submit(t0, "b", SimDuration::from_millis(5)).is_none());
        assert!(s.submit(t0, "c", SimDuration::from_millis(1)).is_none());
        assert_eq!(s.queue_len(), 2);

        let (tok, next) = s.finish_current(SimTime(10_000_000));
        assert_eq!(tok, "a");
        assert_eq!(next, Some(SimTime(15_000_000)));
        let (tok, next) = s.finish_current(SimTime(15_000_000));
        assert_eq!(tok, "b");
        assert_eq!(next, Some(SimTime(16_000_000)));
        let (tok, next) = s.finish_current(SimTime(16_000_000));
        assert_eq!(tok, "c");
        assert_eq!(next, None);
        assert!(s.is_idle());
        assert_eq!(s.served(), 3);
        assert_eq!(s.busy_time(), SimDuration::from_millis(16));
    }

    #[test]
    fn latency_includes_queueing() {
        let mut s: FifoServer<u8> = FifoServer::new();
        s.submit(SimTime::ZERO, 1, SimDuration::from_millis(10));
        s.submit(SimTime::ZERO, 2, SimDuration::from_millis(10));
        s.finish_current(SimTime(10_000_000));
        s.finish_current(SimTime(20_000_000));
        // Latencies: 10 ms and 20 ms -> mean 15 ms.
        assert_eq!(s.mean_latency(), Some(SimDuration::from_millis(15)));
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut s: FifoServer<u8> = FifoServer::new();
        s.submit(SimTime::ZERO, 1, SimDuration::from_millis(5));
        s.finish_current(SimTime(5_000_000));
        assert!((s.utilization(SimTime(10_000_000)) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "while idle")]
    fn finish_when_idle_panics() {
        let mut s: FifoServer<u8> = FifoServer::new();
        s.finish_current(SimTime::ZERO);
    }

    #[test]
    fn idle_server_reports_idle() {
        let s: FifoServer<u8> = FifoServer::new();
        assert!(s.is_idle());
        assert_eq!(s.mean_latency(), None);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }
}
