//! Seeded random-number helpers.
//!
//! All stochastic elements of the study (random plan generation, random data
//! placement, the external-load arrival process) draw from explicitly
//! seeded generators so that every experiment is reproducible. This module
//! wraps `rand::rngs::SmallRng` and adds the distributions the simulator
//! needs (exponential inter-arrivals for the load process, uniform picks).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A deterministic RNG handle used throughout the simulator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator; `stream` distinguishes
    /// subsystems so their draws do not interleave.
    pub fn derive(&mut self, stream: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "SimRng::below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "SimRng::range: empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.inner.gen::<f64>() < p
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// Used for the external server-disk load process (random read requests
    /// at a configurable rate, §3.2.2).
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        // Inverse-transform sampling; clamp u away from 0 to avoid ln(0).
        let u: f64 = self.inner.gen::<f64>().max(1e-12);
        SimDuration::from_secs_f64(-u.ln() * mean.as_secs_f64())
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "SimRng::pick on empty slice");
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.below(1 << 30) == b.below(1 << 30)).count();
        assert!(same < 4, "seeds 1 and 2 produced {same}/64 collisions");
    }

    #[test]
    fn exp_duration_has_roughly_right_mean() {
        let mut rng = SimRng::seed_from_u64(42);
        let mean = SimDuration::from_millis(25);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| rng.exp_duration(mean).as_secs_f64())
            .sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - 0.025).abs() < 0.001,
            "sample mean {sample_mean} too far from 0.025"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn derive_produces_independent_streams() {
        let mut root = SimRng::seed_from_u64(9);
        let mut c1 = root.derive(1);
        let mut c2 = root.derive(2);
        let same = (0..64).filter(|_| c1.below(1 << 30) == c2.below(1 << 30)).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
