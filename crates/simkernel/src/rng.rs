//! Seeded random-number helpers.
//!
//! All stochastic elements of the study (random plan generation, random data
//! placement, the external-load arrival process) draw from explicitly
//! seeded generators so that every experiment is reproducible. The core
//! generator is an in-repo xoshiro256++ (Blackman/Vigna), seeded through
//! SplitMix64 so that nearby `u64` seeds produce uncorrelated states; the
//! module adds the distributions the simulator needs (exponential
//! inter-arrivals for the load process, uniform picks).
//!
//! There is **no hidden per-run state**: construction requires an explicit
//! seed, and `derive` is the only sanctioned way to fork a stream, so two
//! identically-seeded simulator runs consume identical random sequences
//! (see the byte-identical-stats regression test in `csqp-experiments`).

use crate::time::SimDuration;

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG handle used throughout the simulator.
///
/// xoshiro256++ with 256 bits of state; period 2^256 − 1. Not
/// cryptographic — the simulator only needs reproducible, well-mixed
/// streams.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator; `stream` distinguishes
    /// subsystems so their draws do not interleave.
    pub fn derive(&mut self, stream: u64) -> SimRng {
        let s = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "SimRng::below(0)");
        // Rejection sampling over the top of the 64-bit range keeps the
        // draw exactly uniform for any n.
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "SimRng::range: empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.unit() < p
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// Used for the external server-disk load process (random read requests
    /// at a configurable rate, §3.2.2).
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        // Inverse-transform sampling; clamp u away from 0 to avoid ln(0).
        let u: f64 = self.unit().max(1e-12);
        SimDuration::from_secs_f64(-u.ln() * mean.as_secs_f64())
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "SimRng::pick on empty slice");
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4, "seeds 1 and 2 produced {same}/64 collisions");
    }

    #[test]
    fn exp_duration_has_roughly_right_mean() {
        let mut rng = SimRng::seed_from_u64(42);
        let mean = SimDuration::from_millis(25);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp_duration(mean).as_secs_f64()).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - 0.025).abs() < 0.001,
            "sample mean {sample_mean} too far from 0.025"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn derive_produces_independent_streams() {
        let mut root = SimRng::seed_from_u64(9);
        let mut c1 = root.derive(1);
        let mut c2 = root.derive(2);
        let same = (0..64)
            .filter(|_| c1.below(1 << 30) == c2.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
