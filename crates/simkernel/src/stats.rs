//! Sample statistics for the experimental methodology.
//!
//! The paper runs every experiment repeatedly and reports means with 90%
//! confidence intervals within 5% of the mean (§3.1.1, §4.1). [`Sample`]
//! accumulates observations with Welford's algorithm and produces the
//! Student-t 90% confidence half-width; the experiment harness uses it to
//! decide when enough repetitions have been run.

/// Running mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct Sample {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Sample {
    /// An empty sample.
    pub fn new() -> Self {
        Sample {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 90% confidence interval for the mean.
    ///
    /// Uses the Student-t quantile for small samples, converging to the
    /// normal quantile (1.645) for large ones. Returns 0 with fewer than two
    /// observations.
    pub fn ci90_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = t_quantile_90(self.n - 1);
        t * self.std_dev() / (self.n as f64).sqrt()
    }

    /// The 90% CI half-width as a fraction of the mean (the paper's
    /// "within 5%" criterion). `None` when the mean is ~0.
    pub fn ci90_relative(&self) -> Option<f64> {
        if self.mean.abs() < 1e-12 {
            None
        } else {
            Some(self.ci90_half_width() / self.mean.abs())
        }
    }

    /// True when the paper's stopping criterion holds: the 90% CI half-width
    /// is within `frac` of the mean (a zero mean is considered converged).
    pub fn converged_within(&self, frac: f64) -> bool {
        if self.n < 2 {
            return false;
        }
        match self.ci90_relative() {
            None => true,
            Some(rel) => rel <= frac,
        }
    }
}

/// Two-sided 90% Student-t quantile (i.e. t_{0.95, df}).
fn t_quantile_90(df: u64) -> f64 {
    // Table for small df; the tail converges quickly to the z value.
    const TABLE: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
        1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
        1.703, 1.701, 1.699, 1.697,
    ];
    if df == 0 {
        f64::INFINITY
    } else if (df as usize) <= TABLE.len() {
        TABLE[df as usize - 1]
    } else if df <= 60 {
        1.671
    } else {
        1.645
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut s = Sample::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic dataset is 4; sample variance
        // is 4 * 8/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn identical_observations_converge_immediately() {
        let mut s = Sample::new();
        s.add(3.0);
        assert!(!s.converged_within(0.05), "one sample is never converged");
        s.add(3.0);
        assert!(s.converged_within(0.05));
        assert_eq!(s.ci90_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut s = Sample::new();
        // Alternating 9/11: mean 10, sd ~1.
        for i in 0..10 {
            s.add(if i % 2 == 0 { 9.0 } else { 11.0 });
        }
        let w10 = s.ci90_half_width();
        for i in 0..90 {
            s.add(if i % 2 == 0 { 9.0 } else { 11.0 });
        }
        let w100 = s.ci90_half_width();
        assert!(w100 < w10 / 2.0, "CI did not shrink: {w10} -> {w100}");
        assert!(s.converged_within(0.05));
    }

    #[test]
    fn t_quantile_monotone_towards_z() {
        assert!(t_quantile_90(1) > t_quantile_90(5));
        assert!(t_quantile_90(5) > t_quantile_90(29));
        assert!((t_quantile_90(1000) - 1.645).abs() < 1e-9);
    }

    #[test]
    fn zero_mean_relative_ci_is_none() {
        let mut s = Sample::new();
        s.add(1.0);
        s.add(-1.0);
        assert_eq!(s.ci90_relative(), None);
        assert!(s.converged_within(0.05));
    }
}
