//! Virtual time for the simulation.
//!
//! Time is kept in integer nanoseconds. Integer time makes event ordering
//! exact and runs reproducible across platforms; nanosecond resolution is
//! fine enough that a single CPU instruction at the paper's 50 MIPS
//! (20 ns/instruction) is representable without rounding.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; that always indicates a
    /// kernel bug (time flows forward).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier={} > now={}",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from (possibly fractional) seconds.
    ///
    /// Rounds to the nearest nanosecond. Negative and non-finite inputs are
    /// rejected with a panic because they always indicate a modeling bug.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Build a duration from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Build a duration from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from integer nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimDuration::from_nanos(250).as_secs_f64() - 2.5e-7).abs() < 1e-18);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        let t2 = t + SimDuration::from_millis(5);
        assert_eq!(t2.since(t), SimDuration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "SimTime::since")]
    fn since_rejects_backwards_time() {
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        let _ = SimTime::ZERO.since(t);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-0.1);
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
        assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_millis(6));
        assert_eq!(SimDuration::from_millis(6) / 3, SimDuration::from_millis(2));
    }
}
