//! Property tests for the simulation kernel: the event queue's ordering
//! contract and the FIFO server's conservation laws.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_simkernel::{EventQueue, FifoServer, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Pops are globally ordered by (time, insertion sequence) no matter
    /// the schedule order, and the clock never runs backwards.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime(*t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut prev_t = None;
        let mut popped = 0;
        while let Some((t, payload)) = q.pop() {
            popped += 1;
            prop_assert!(t >= last_time, "clock went backwards");
            if prev_t == Some(t) {
                // FIFO among equal timestamps: insertion indices ascend.
                prop_assert!(
                    seen_at_time.last().is_none_or(|&p| p < payload),
                    "tie broken out of order"
                );
                seen_at_time.push(payload);
            } else {
                seen_at_time = vec![payload];
            }
            prev_t = Some(t);
            last_time = t;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// FIFO server: work conservation (busy time = sum of services) and
    /// completion order = submission order.
    #[test]
    fn fifo_server_conserves_work(services in proptest::collection::vec(1u64..10_000, 1..100)) {
        let mut s: FifoServer<u32> = FifoServer::new();
        let mut first = None;
        for (i, svc) in services.iter().enumerate() {
            if let Some(f) =
                s.submit(SimTime::ZERO, i as u32, SimDuration::from_nanos(*svc))
            {
                first = Some(f);
            }
        }
        let mut fin = first.unwrap();
        let mut order = Vec::new();
        loop {
            let (tok, next) = s.finish_current(fin);
            order.push(tok);
            match next {
                Some(f) => fin = f,
                None => break,
            }
        }
        prop_assert_eq!(order, (0..services.len() as u32).collect::<Vec<_>>());
        prop_assert_eq!(s.busy_time().as_nanos(), services.iter().sum::<u64>());
        prop_assert_eq!(fin.as_nanos(), services.iter().sum::<u64>());
        prop_assert_eq!(s.served(), services.len() as u64);
    }
}
