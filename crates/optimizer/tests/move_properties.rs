//! Property tests over the optimizer's transformation rules: arbitrary
//! move sequences must preserve structural validity, policy membership,
//! and the relation set — the invariants that make the randomized walk
//! sound.

use csqp_catalog::{JoinEdge, QuerySpec, RelId, Relation};
use csqp_core::{is_well_formed, Policy};
use csqp_optimizer::moves::MoveSet;
use csqp_optimizer::{applicable_moves, apply_move, random_plan};
use csqp_simkernel::rng::SimRng;
use proptest::prelude::*;

fn chain(n: u32) -> QuerySpec {
    let rels = (0..n)
        .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
        .collect();
    let edges = (0..n - 1)
        .map(|i| JoinEdge { a: RelId(i), b: RelId(i + 1), selectivity: 1e-4 })
        .collect();
    QuerySpec::new(rels, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A long random walk of accepted moves never leaves the policy's
    /// valid, well-formed space, and never changes which relations are
    /// scanned.
    #[test]
    fn move_sequences_preserve_invariants(
        n in 2u32..7,
        policy_idx in 0usize..3,
        seed in 0u64..10_000,
        walk in 5usize..60,
    ) {
        let q = chain(n);
        let policy = Policy::ALL[policy_idx];
        let mut rng = SimRng::seed_from_u64(seed);
        let mut plan = random_plan(&q, policy, &mut rng);
        let rels_before = plan.rel_set(plan.root());
        let set = MoveSet::for_policy(policy);
        for _ in 0..walk {
            let moves = applicable_moves(&plan, policy, set);
            if moves.is_empty() {
                break;
            }
            let mv = *rng.pick(&moves);
            let Some(cand) = apply_move(&plan, mv) else { continue };
            if !is_well_formed(&cand) {
                continue; // the search rejects these too
            }
            cand.validate_structure(&q).unwrap();
            policy.validate(&cand).unwrap();
            prop_assert_eq!(cand.rel_set(cand.root()), rels_before);
            plan = cand;
        }
    }

    /// Every applicable move either applies cleanly or is rejected as a
    /// whole — `apply_move` never panics and never yields a structurally
    /// broken plan.
    #[test]
    fn applicable_moves_apply(
        n in 2u32..7,
        seed in 0u64..10_000,
    ) {
        let q = chain(n);
        let mut rng = SimRng::seed_from_u64(seed);
        let plan = random_plan(&q, Policy::HybridShipping, &mut rng);
        let set = MoveSet::for_policy(Policy::HybridShipping);
        for mv in applicable_moves(&plan, Policy::HybridShipping, set) {
            let applied = apply_move(&plan, mv)
                .unwrap_or_else(|| panic!("listed move must apply: {mv:?} on {plan}"));
            applied.validate_structure(&q).unwrap();
        }
    }

    /// The arena never leaks: after any single move the plan has the
    /// same number of reachable nodes.
    #[test]
    fn moves_do_not_leak_nodes(
        n in 2u32..7,
        seed in 0u64..10_000,
    ) {
        let q = chain(n);
        let mut rng = SimRng::seed_from_u64(seed);
        let plan = random_plan(&q, Policy::HybridShipping, &mut rng);
        let reachable_before = plan.postorder().len();
        let set = MoveSet::for_policy(Policy::HybridShipping);
        for mv in applicable_moves(&plan, Policy::HybridShipping, set) {
            if let Some(applied) = apply_move(&plan, mv) {
                prop_assert_eq!(applied.postorder().len(), reachable_before);
                prop_assert_eq!(applied.arena_len(), plan.arena_len());
            }
        }
    }
}
