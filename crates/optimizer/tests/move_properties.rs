//! Property tests over the optimizer's transformation rules: arbitrary
//! move sequences must preserve structural validity, policy membership,
//! and the relation set — the invariants that make the randomized walk
//! sound.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_catalog::{Catalog, JoinEdge, QuerySpec, RelId, Relation, SiteId, SystemConfig};
use csqp_core::{is_well_formed, Policy};
use csqp_cost::{CostModel, Objective};
use csqp_optimizer::moves::{apply_move_verified, MoveSet};
use csqp_optimizer::{applicable_moves, apply_move, random_plan, OptConfig, Optimizer};
use csqp_simkernel::rng::SimRng;
use csqp_verify::{check_logical, Checker};
use proptest::prelude::*;

fn chain(n: u32) -> QuerySpec {
    let rels = (0..n)
        .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
        .collect();
    let edges = (0..n - 1)
        .map(|i| JoinEdge {
            a: RelId(i),
            b: RelId(i + 1),
            selectivity: 1e-4,
        })
        .collect();
    QuerySpec::new(rels, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A long random walk of accepted moves never leaves the policy's
    /// valid, well-formed space, and never changes which relations are
    /// scanned.
    #[test]
    fn move_sequences_preserve_invariants(
        n in 2u32..7,
        policy_idx in 0usize..3,
        seed in 0u64..10_000,
        walk in 5usize..60,
    ) {
        let q = chain(n);
        let policy = Policy::ALL[policy_idx];
        let mut rng = SimRng::seed_from_u64(seed);
        let mut plan = random_plan(&q, policy, &mut rng);
        let rels_before = plan.rel_set(plan.root());
        let set = MoveSet::for_policy(policy);
        for _ in 0..walk {
            let moves = applicable_moves(&plan, policy, set);
            if moves.is_empty() {
                break;
            }
            let mv = *rng.pick(&moves);
            let Some(cand) = apply_move(&plan, mv) else { continue };
            if !is_well_formed(&cand) {
                continue; // the search rejects these too
            }
            cand.validate_structure(&q).unwrap();
            policy.validate(&cand).unwrap();
            prop_assert_eq!(cand.rel_set(cand.root()), rels_before);
            plan = cand;
        }
    }

    /// Every applicable move either applies cleanly or is rejected as a
    /// whole — `apply_move` never panics and never yields a structurally
    /// broken plan.
    #[test]
    fn applicable_moves_apply(
        n in 2u32..7,
        seed in 0u64..10_000,
    ) {
        let q = chain(n);
        let mut rng = SimRng::seed_from_u64(seed);
        let plan = random_plan(&q, Policy::HybridShipping, &mut rng);
        let set = MoveSet::for_policy(Policy::HybridShipping);
        for mv in applicable_moves(&plan, Policy::HybridShipping, set) {
            let applied = apply_move(&plan, mv)
                .unwrap_or_else(|| panic!("listed move must apply: {mv:?} on {plan}"));
            applied.validate_structure(&q).unwrap();
        }
    }

    /// The static analyzer's view of the same invariant: every verified
    /// move maps a policy-conformant well-formed plan to another one, for
    /// every policy — `check_logical` finds nothing to flag.
    #[test]
    fn verified_moves_map_conformant_plans_to_conformant_plans(
        n in 2u32..7,
        policy_idx in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let q = chain(n);
        let policy = Policy::ALL[policy_idx];
        let mut rng = SimRng::seed_from_u64(seed);
        let plan = random_plan(&q, policy, &mut rng);
        prop_assert!(check_logical(&plan, &q, policy).is_clean());
        let set = MoveSet::for_policy(policy);
        for mv in applicable_moves(&plan, policy, set) {
            if let Some(next) = apply_move_verified(&plan, mv, &q, policy) {
                let report = check_logical(&next, &q, policy);
                prop_assert!(
                    report.is_clean(),
                    "verified move {:?} left diagnostics under {}:\n{}",
                    mv, policy.short(), report
                );
            }
        }
    }

    /// End to end: for every policy × objective the two-phase optimizer
    /// returns a plan that passes all four analyzer passes against a
    /// real catalog and config.
    #[test]
    fn optimizer_output_verifies_for_all_policies_and_objectives(
        policy_idx in 0usize..3,
        objective_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let q = chain(4);
        let policy = Policy::ALL[policy_idx];
        let objective = [
            Objective::Communication,
            Objective::ResponseTime,
            Objective::TotalCost,
        ][objective_idx];
        let config = SystemConfig::default();
        let mut catalog = Catalog::new(2);
        for (i, r) in q.relations.iter().enumerate() {
            catalog.place(r.id, SiteId::server(1 + (i as u32) % 2));
        }
        let model = CostModel::new(&config, &catalog, &q, SiteId::CLIENT);
        // A deliberately small search budget: the property is about the
        // output's validity, not the search's quality.
        let opt_cfg = OptConfig {
            ii_starts: 2,
            ii_patience: 8,
            sa_t0_factor: 0.05,
            sa_alpha: 0.7,
            sa_moves_per_join: 3,
            sa_frozen_stages: 2,
            sa_min_temp_frac: 0.1,
            paper_moves_only: false,
        };
        let optimizer = Optimizer::new(&model, policy, objective, opt_cfg);
        let mut rng = SimRng::seed_from_u64(seed);
        let result = optimizer.optimize(&q, &mut rng);
        let report = Checker::new(&q, &catalog, &config, SiteId::CLIENT)
            .with_policy(policy)
            .check(&result.plan);
        prop_assert!(
            report.is_clean(),
            "optimizer [{} / {}] returned a plan with diagnostics:\n{}",
            policy.short(), objective, report
        );
    }

    /// The arena never leaks: after any single move the plan has the
    /// same number of reachable nodes.
    #[test]
    fn moves_do_not_leak_nodes(
        n in 2u32..7,
        seed in 0u64..10_000,
    ) {
        let q = chain(n);
        let mut rng = SimRng::seed_from_u64(seed);
        let plan = random_plan(&q, Policy::HybridShipping, &mut rng);
        let reachable_before = plan.postorder().len();
        let set = MoveSet::for_policy(Policy::HybridShipping);
        for mv in applicable_moves(&plan, Policy::HybridShipping, set) {
            if let Some(applied) = apply_move(&plan, mv) {
                prop_assert_eq!(applied.postorder().len(), reachable_before);
                prop_assert_eq!(applied.arena_len(), plan.arena_len());
            }
        }
    }
}
