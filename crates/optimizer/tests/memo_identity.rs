//! Memo-hit plans must be byte-identical to cold optimization — the
//! determinism contract that lets the serving digest stay unchanged with
//! the memo on or off. Exercised across every policy × objective ×
//! cache-bucket cell, both exhaustively on a fixed spec and by property
//! over random specs.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_catalog::{Catalog, SiteId, SystemConfig};
use csqp_core::{CancelToken, Policy};
use csqp_cost::Objective;
use csqp_memo::{bucket_fraction, CacheBuckets, Env, MemoConfig, MemoTable};
use csqp_optimizer::{CompileTimeAssumption, MemoOutcome, OptConfig, TwoStepPlanner};
use csqp_workload::WorkloadSpec;
use proptest::prelude::*;

const OBJECTIVES: [Objective; 3] = [
    Objective::Communication,
    Objective::ResponseTime,
    Objective::TotalCost,
];

fn env() -> Env {
    Env {
        placement_seed: 0xBEEF,
        num_servers: 3,
    }
}

/// A runtime catalog placing the spec's relations round-robin, with the
/// bucket-representative cached fractions applied — the same construction
/// the serving layer uses.
fn runtime_catalog(spec: &WorkloadSpec, buckets: &CacheBuckets, num_servers: u32) -> Catalog {
    let query = spec.build();
    let mut catalog = Catalog::new(num_servers);
    for (i, r) in query.relations.iter().enumerate() {
        catalog.place(r.id, SiteId::server(1 + (i as u32 % num_servers)));
    }
    for (rel_index, fraction) in buckets.planning_fractions() {
        if (rel_index as usize) < query.relations.len() {
            catalog.set_cached_fraction(query.relations[rel_index as usize].id, fraction);
        }
    }
    catalog
}

/// Optimize the same key twice against one memo table (miss then hit) and
/// once with no table (bypass); all three plans must be identical.
fn assert_hit_matches_cold(spec: &WorkloadSpec, policy: Policy, objective: Objective, bucket: u8) {
    let planner = TwoStepPlanner {
        policy,
        objective,
        config: OptConfig::fast(),
    };
    let query = spec.build();
    let sys = SystemConfig::default();
    let buckets = CacheBuckets::quantize(&vec![
        bucket_fraction(bucket);
        spec.num_relations() as usize
    ]);
    let catalog = runtime_catalog(spec, &buckets, env().num_servers);
    let table = MemoTable::new(MemoConfig::default());
    let guard = CancelToken::inert();

    let (compiled, c_out) = planner.compile_memoized(
        spec,
        &query,
        &sys,
        CompileTimeAssumption::Centralized,
        env(),
        Some(&table),
    );
    assert_eq!(c_out, MemoOutcome::Miss);

    let (cold, out1) = planner
        .site_select_memoized(
            spec,
            &compiled,
            &query,
            &sys,
            &catalog,
            &buckets,
            env(),
            Some(&table),
            &guard,
        )
        .unwrap();
    assert_eq!(out1, MemoOutcome::Miss);

    let (warm, out2) = planner
        .site_select_memoized(
            spec,
            &compiled,
            &query,
            &sys,
            &catalog,
            &buckets,
            env(),
            Some(&table),
            &guard,
        )
        .unwrap();
    assert_eq!(out2, MemoOutcome::Hit);
    assert_eq!(
        cold, warm,
        "hit diverged from cold for {policy:?}/{objective:?}/b{bucket}"
    );

    let (bypass, out3) = planner
        .site_select_memoized(
            spec,
            &compiled,
            &query,
            &sys,
            &catalog,
            &buckets,
            env(),
            None,
            &guard,
        )
        .unwrap();
    assert_eq!(out3, MemoOutcome::Bypass);
    assert_eq!(
        cold, bypass,
        "memo-off plan diverged for {policy:?}/{objective:?}/b{bucket}"
    );

    // The compiled layer replays identically too.
    let (compiled_again, c_hit) = planner.compile_memoized(
        spec,
        &query,
        &sys,
        CompileTimeAssumption::Centralized,
        env(),
        Some(&table),
    );
    assert_eq!(c_hit, MemoOutcome::Hit);
    assert_eq!(compiled, compiled_again);
}

#[test]
fn every_policy_objective_bucket_cell_is_identical() {
    let spec = WorkloadSpec::Chain {
        n: 4,
        selectivity: 1e-4,
    };
    for policy in Policy::ALL {
        for objective in OBJECTIVES {
            for bucket in [0u8, 2, 4, 8] {
                assert_hit_matches_cold(&spec, policy, objective, bucket);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn memo_hits_are_byte_identical_over_random_specs(
        kind in 0u8..3,
        n in 2u32..7,
        sel_ix in 0usize..3,
        policy_ix in 0usize..3,
        objective_ix in 0usize..3,
        bucket in 0u8..=8,
    ) {
        let sel = [1e-4, 1e-3, 0.01][sel_ix];
        let spec = match kind {
            0 => WorkloadSpec::Chain { n, selectivity: sel },
            1 => WorkloadSpec::Star { n, selectivity: sel },
            _ => WorkloadSpec::Spj { n, join_sel: sel, selection: 0.2, every_k: 2 },
        };
        assert_hit_matches_cold(
            &spec,
            Policy::ALL[policy_ix],
            OBJECTIVES[objective_ix],
            bucket,
        );
    }
}
