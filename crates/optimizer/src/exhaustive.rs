//! Exhaustive optimization for small queries — the ground truth the
//! randomized two-phase optimizer is validated against.
//!
//! Enumerates *every* join tree (all shapes × all leaf arrangements,
//! skipping Cartesian products on connected graphs) and, for each tree,
//! *every* policy-legal, well-formed annotation assignment. Exponential,
//! so only usable for a handful of relations — which is exactly what the
//! tests need ("for the purposes of this study … it is necessary only
//! that the generated plans be 'reasonable' rather than truly optimal",
//! §3.1.1; this module tells us how close to optimal they actually are).

use csqp_catalog::{QuerySpec, RelId, RelSet};
use csqp_core::bind::{bind, BindContext};
use csqp_core::{is_well_formed, JoinTree, Plan, Policy};
use csqp_cost::{CostModel, Objective};
use csqp_verify::bounds;

/// Upper bound on relations for exhaustive search (4 relations already
/// yields 120 trees × hundreds of annotation assignments).
pub const MAX_EXHAUSTIVE_RELATIONS: usize = 5;

/// Enumerate all join trees over `rels` (both operand orders — the build
/// side matters for hybrid hash).
fn all_trees(query: &QuerySpec, rels: &[RelId]) -> Vec<JoinTree> {
    if rels.len() == 1 {
        return vec![JoinTree::leaf(rels[0])];
    }
    let mut out = Vec::new();
    // Every proper non-empty subset as the inner side (ordered pairs).
    let n = rels.len();
    for mask in 1u32..(1 << n) - 1 {
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for (i, r) in rels.iter().enumerate() {
            if mask >> i & 1 == 1 {
                left.push(*r);
            } else {
                right.push(*r);
            }
        }
        let lset = left
            .iter()
            .fold(RelSet::EMPTY, |s, r| s.union(RelSet::single(*r)));
        let rset = right
            .iter()
            .fold(RelSet::EMPTY, |s, r| s.union(RelSet::single(*r)));
        if !query.joinable(lset, rset) {
            continue; // skip Cartesian products (connected benchmark graphs)
        }
        for lt in all_trees(query, &left) {
            for rt in all_trees(query, &right) {
                out.push(JoinTree::join(lt.clone(), rt));
            }
        }
    }
    out
}

/// Enumerate every policy-legal annotation assignment of `plan`,
/// yielding only well-formed variants.
fn all_annotations(plan: &Plan, policy: Policy) -> Vec<Plan> {
    let nodes = plan.postorder();
    let mut variants = vec![plan.clone()];
    for id in nodes {
        let op = plan.node(id).op;
        let choices = policy.allowed(op);
        let mut next = Vec::with_capacity(variants.len() * choices.len());
        for v in &variants {
            for &ann in choices {
                let mut w = v.clone();
                w.node_mut(id).ann = ann;
                next.push(w);
            }
        }
        variants = next;
    }
    variants.retain(is_well_formed);
    variants
}

/// The true optimum over the full (tree × annotation) space.
///
/// Returns the best plan and its metric value.
// Invariant panic: the enumeration always yields at least one
// policy-conformant plan per tree, and conformant plans bind.
#[allow(clippy::expect_used)]
pub fn exhaustive_optimum(
    query: &QuerySpec,
    policy: Policy,
    objective: Objective,
    model: &CostModel<'_>,
) -> (Plan, f64) {
    assert!(
        query.num_relations() <= MAX_EXHAUSTIVE_RELATIONS,
        "exhaustive search over {} relations would not terminate usefully",
        query.num_relations()
    );
    let rels: Vec<RelId> = query.relations.iter().map(|r| r.id).collect();
    let mut best: Option<(Plan, f64)> = None;
    let mut plans_seen = 0u64;
    for tree in all_trees(query, &rels) {
        let skeleton = tree.into_plan(
            query,
            csqp_core::Annotation::Consumer,
            csqp_core::Annotation::Client,
        );
        for plan in all_annotations(&skeleton, policy) {
            plans_seen += 1;
            let Some(cost) = model.evaluate_plan(&plan, objective) else {
                continue;
            };
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
    }
    assert!(plans_seen > 0, "no plans enumerated");
    best.expect("at least one plan binds")
}

/// What the budget gate did over one pruned exhaustive run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Search states (tree × annotation) enumerated.
    pub enumerated: u64,
    /// States discarded by [`bound_prune`] before any cost evaluation.
    pub pruned: u64,
}

/// The budget-feasibility gate: true when `plan`'s *guaranteed*
/// worst-case client footprint (`csqp_verify::bounds`) provably exceeds
/// `budget_pages`, so the state can be discarded without pricing it —
/// admission control would refuse the plan no matter how cheap the cost
/// model says it is.
///
/// Conservative by construction: a plan the bounds pass cannot analyze,
/// or that does not bind, is never pruned (the cost model decides its
/// fate), and the footprint is an upper bound — so pruning only removes
/// plans the `--mem-budget` gate would reject. That is what makes the
/// exhaustive-vs-pruned equality theorem below hold: under a budget no
/// plan exceeds, the pruned search returns *exactly* the unpruned
/// optimum.
pub fn bound_prune(plan: &Plan, model: &CostModel<'_>, budget_pages: u64) -> bool {
    let Ok(bounds) = bounds::analyze(plan, model.query(), model.config().page_size) else {
        return false;
    };
    let Ok(bound) = bind(
        plan,
        BindContext {
            catalog: model.catalog(),
            query_site: model.query_site(),
        },
    ) else {
        return false;
    };
    bounds::client_footprint_pages(&bound, &bounds) > budget_pages
}

/// The true optimum over the bound-feasible fraction of the full
/// (tree × annotation) space: every state whose guaranteed client
/// footprint exceeds `budget_pages` is discarded by [`bound_prune`]
/// *before* cost evaluation.
///
/// Returns `None` when no enumerated state is bound-feasible (the
/// admission gate would reject this query outright at this budget — the
/// caller falls back to [`exhaustive_optimum`] or refuses the query),
/// plus the gate's counters either way.
pub fn exhaustive_optimum_pruned(
    query: &QuerySpec,
    policy: Policy,
    objective: Objective,
    model: &CostModel<'_>,
    budget_pages: u64,
) -> (Option<(Plan, f64)>, PruneStats) {
    assert!(
        query.num_relations() <= MAX_EXHAUSTIVE_RELATIONS,
        "exhaustive search over {} relations would not terminate usefully",
        query.num_relations()
    );
    let rels: Vec<RelId> = query.relations.iter().map(|r| r.id).collect();
    let mut best: Option<(Plan, f64)> = None;
    let mut stats = PruneStats::default();
    for tree in all_trees(query, &rels) {
        let skeleton = tree.into_plan(
            query,
            csqp_core::Annotation::Consumer,
            csqp_core::Annotation::Client,
        );
        for plan in all_annotations(&skeleton, policy) {
            stats.enumerated += 1;
            if bound_prune(&plan, model, budget_pages) {
                stats.pruned += 1;
                continue;
            }
            let Some(cost) = model.evaluate_plan(&plan, objective) else {
                continue;
            };
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
    }
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{Catalog, JoinEdge, Relation, SiteId, SystemConfig};
    use csqp_simkernel::rng::SimRng;

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn catalog(n: u32, servers: u32) -> Catalog {
        let mut c = Catalog::new(servers);
        for i in 0..n {
            c.place(RelId(i), SiteId::server(1 + i % servers));
        }
        c
    }

    #[test]
    fn tree_enumeration_counts() {
        let q = chain(3);
        // Chain of 3: splits {0}|{12}, {01}|{2}, {1}|{02}(cross, skipped),
        // plus operand orders and inner shapes.
        let trees = all_trees(&q, &[RelId(0), RelId(1), RelId(2)]);
        assert!(!trees.is_empty());
        for t in &trees {
            assert_eq!(t.leaves(), 3);
        }
        // All trees distinct.
        let mut rendered: Vec<String> = trees
            .iter()
            .map(|t| {
                t.clone()
                    .into_plan(
                        &q,
                        csqp_core::Annotation::Consumer,
                        csqp_core::Annotation::Client,
                    )
                    .render_compact()
            })
            .collect();
        rendered.sort();
        let n = rendered.len();
        rendered.dedup();
        assert_eq!(rendered.len(), n, "duplicate trees enumerated");
    }

    #[test]
    fn annotation_enumeration_respects_policy_and_wellformedness() {
        let q = chain(3);
        let skeleton = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            csqp_core::Annotation::Consumer,
            csqp_core::Annotation::Client,
        );
        let ds = all_annotations(&skeleton, Policy::DataShipping);
        assert_eq!(ds.len(), 1, "DS has a single legal assignment");
        let qs = all_annotations(&skeleton, Policy::QueryShipping);
        // 2 joins × 2 annotations = 4, all well-formed.
        assert_eq!(qs.len(), 4);
        let hy = all_annotations(&skeleton, Policy::HybridShipping);
        // 3^2 × 2^3 = 72 raw, minus ill-formed ones.
        assert!(hy.len() > 40 && hy.len() <= 72, "{}", hy.len());
        for p in &hy {
            assert!(is_well_formed(p));
            Policy::HybridShipping.validate(p).unwrap();
        }
    }

    /// The headline validation: 2PO lands within 10% of the true optimum
    /// on every policy × objective combination for 3-way joins over two
    /// servers with a partially cached client.
    #[test]
    fn two_phase_is_near_optimal_on_small_queries() {
        let q = chain(3);
        let mut cat = catalog(3, 2);
        cat.set_cached_fraction(RelId(0), 1.0);
        let sys = SystemConfig::default();
        let model = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
        for policy in Policy::ALL {
            for objective in [Objective::Communication, Objective::ResponseTime] {
                let (_, exact) = exhaustive_optimum(&q, policy, objective, &model);
                let opt = crate::search::Optimizer::new(
                    &model,
                    policy,
                    objective,
                    crate::search::OptConfig::fast(),
                );
                let mut rng = SimRng::seed_from_u64(31);
                let found = opt.optimize(&q, &mut rng);
                // The search metric includes the tie-break; compare the
                // raw objective values.
                let found_raw = model.evaluate_plan(&found.plan, objective).unwrap();
                assert!(
                    found_raw <= exact * 1.10 + 1e-9,
                    "{policy}/{objective}: 2PO {found_raw} vs optimum {exact}"
                );
                // And the optimum is never better than what exhaustive
                // search says is possible.
                assert!(found_raw >= exact - 1e-9);
            }
        }
    }

    /// The pruning soundness theorem: under a budget no plan exceeds,
    /// the pruned search returns *exactly* the unpruned optimum — same
    /// plan bytes, same cost — for every policy × objective. Pruning can
    /// reorder nothing and cut nothing it should not.
    #[test]
    fn generous_budget_pruned_search_equals_exhaustive() {
        let q = csqp_workload::chain_query(3, 1e-4);
        let mut cat = catalog(3, 2);
        cat.set_cached_fraction(RelId(0), 0.5);
        let sys = SystemConfig::default();
        let model = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
        for policy in Policy::ALL {
            for objective in [
                Objective::Communication,
                Objective::ResponseTime,
                Objective::TotalCost,
            ] {
                let (exact_plan, exact) = exhaustive_optimum(&q, policy, objective, &model);
                let (pruned, stats) =
                    exhaustive_optimum_pruned(&q, policy, objective, &model, u64::MAX);
                let (pruned_plan, pruned_cost) = pruned.expect("everything is feasible");
                assert_eq!(
                    stats.pruned, 0,
                    "{policy}/{objective}: nothing exceeds u64::MAX"
                );
                assert!(stats.enumerated > 0);
                assert_eq!(
                    pruned_plan.render_compact(),
                    exact_plan.render_compact(),
                    "{policy}/{objective}"
                );
                assert_eq!(pruned_cost, exact, "{policy}/{objective}");
            }
        }
    }

    /// A tight budget discards exactly the client-heavy states: DS (all
    /// joins at the client) has no feasible state at 300 pages, QS (all
    /// joins at the servers) is untouched, and the chosen QS plan is the
    /// unpruned optimum — the gate never costs QS anything.
    #[test]
    fn tight_budget_prunes_client_joins_and_keeps_qs_exact() {
        let q = csqp_workload::chain_query(3, 1e-4);
        let cat = catalog(3, 2);
        let sys = SystemConfig::default();
        let model = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
        let budget = 300; // fits the 250-page result bound, not 500-page join inputs

        let (ds, ds_stats) = exhaustive_optimum_pruned(
            &q,
            Policy::DataShipping,
            Objective::Communication,
            &model,
            budget,
        );
        assert!(ds.is_none(), "every DS plan joins at the client");
        assert_eq!(ds_stats.pruned, ds_stats.enumerated);

        let (exact_plan, exact) =
            exhaustive_optimum(&q, Policy::QueryShipping, Objective::Communication, &model);
        let (qs, qs_stats) = exhaustive_optimum_pruned(
            &q,
            Policy::QueryShipping,
            Objective::Communication,
            &model,
            budget,
        );
        let (qs_plan, qs_cost) = qs.expect("QS joins at the servers");
        assert!(!bound_prune(&qs_plan, &model, budget));
        assert_eq!(qs_plan.render_compact(), exact_plan.render_compact());
        assert_eq!(qs_cost, exact);
        assert!(qs_stats.pruned < qs_stats.enumerated);

        // Hybrid keeps its server-sited states and the survivor is never
        // cheaper than what the full space could do.
        let (hy, hy_stats) = exhaustive_optimum_pruned(
            &q,
            Policy::HybridShipping,
            Objective::Communication,
            &model,
            budget,
        );
        let (hy_plan, hy_cost) = hy.expect("server-sited hybrid states fit");
        assert!(hy_stats.pruned > 0, "client-sited hybrid states must go");
        let (_, hy_exact) =
            exhaustive_optimum(&q, Policy::HybridShipping, Objective::Communication, &model);
        assert!(hy_cost >= hy_exact - 1e-9);
        assert!(!bound_prune(&hy_plan, &model, budget));
    }

    /// Without key declarations the bounds collapse to the product rule,
    /// so a budget that admits the keyed chain rejects the same shape
    /// unkeyed — the prune consumes exactly what the analyzer proves.
    #[test]
    fn pruning_trusts_only_audited_keys() {
        let keyed = csqp_workload::chain_query(2, 1e-4);
        let unkeyed = chain(2); // same stats, no key declarations
        assert!(unkeyed.relations.iter().all(|r| !r.key));
        let cat = catalog(2, 2);
        let sys = SystemConfig::default();
        let budget = 300;
        let model_keyed = CostModel::new(&sys, &cat, &keyed, SiteId::CLIENT);
        let (qs, _) = exhaustive_optimum_pruned(
            &keyed,
            Policy::QueryShipping,
            Objective::Communication,
            &model_keyed,
            budget,
        );
        assert!(qs.is_some(), "keyed result bound is 250 pages");
        let model_unkeyed = CostModel::new(&sys, &cat, &unkeyed, SiteId::CLIENT);
        let (qs, stats) = exhaustive_optimum_pruned(
            &unkeyed,
            Policy::QueryShipping,
            Objective::Communication,
            &model_unkeyed,
            budget,
        );
        assert!(qs.is_none(), "product bound (10^8 tuples) cannot fit");
        assert_eq!(stats.pruned, stats.enumerated);
    }

    #[test]
    #[should_panic(expected = "would not terminate")]
    fn exhaustive_rejects_big_queries() {
        let q = chain(8);
        let cat = catalog(8, 2);
        let sys = SystemConfig::default();
        let model = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
        exhaustive_optimum(&q, Policy::DataShipping, Objective::Communication, &model);
    }
}
