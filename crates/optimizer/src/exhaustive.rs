//! Exhaustive optimization for small queries — the ground truth the
//! randomized two-phase optimizer is validated against.
//!
//! Enumerates *every* join tree (all shapes × all leaf arrangements,
//! skipping Cartesian products on connected graphs) and, for each tree,
//! *every* policy-legal, well-formed annotation assignment. Exponential,
//! so only usable for a handful of relations — which is exactly what the
//! tests need ("for the purposes of this study … it is necessary only
//! that the generated plans be 'reasonable' rather than truly optimal",
//! §3.1.1; this module tells us how close to optimal they actually are).

use csqp_catalog::{QuerySpec, RelId, RelSet};
use csqp_core::{is_well_formed, JoinTree, Plan, Policy};
use csqp_cost::{CostModel, Objective};

/// Upper bound on relations for exhaustive search (4 relations already
/// yields 120 trees × hundreds of annotation assignments).
pub const MAX_EXHAUSTIVE_RELATIONS: usize = 5;

/// Enumerate all join trees over `rels` (both operand orders — the build
/// side matters for hybrid hash).
fn all_trees(query: &QuerySpec, rels: &[RelId]) -> Vec<JoinTree> {
    if rels.len() == 1 {
        return vec![JoinTree::leaf(rels[0])];
    }
    let mut out = Vec::new();
    // Every proper non-empty subset as the inner side (ordered pairs).
    let n = rels.len();
    for mask in 1u32..(1 << n) - 1 {
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for (i, r) in rels.iter().enumerate() {
            if mask >> i & 1 == 1 {
                left.push(*r);
            } else {
                right.push(*r);
            }
        }
        let lset = left
            .iter()
            .fold(RelSet::EMPTY, |s, r| s.union(RelSet::single(*r)));
        let rset = right
            .iter()
            .fold(RelSet::EMPTY, |s, r| s.union(RelSet::single(*r)));
        if !query.joinable(lset, rset) {
            continue; // skip Cartesian products (connected benchmark graphs)
        }
        for lt in all_trees(query, &left) {
            for rt in all_trees(query, &right) {
                out.push(JoinTree::join(lt.clone(), rt));
            }
        }
    }
    out
}

/// Enumerate every policy-legal annotation assignment of `plan`,
/// yielding only well-formed variants.
fn all_annotations(plan: &Plan, policy: Policy) -> Vec<Plan> {
    let nodes = plan.postorder();
    let mut variants = vec![plan.clone()];
    for id in nodes {
        let op = plan.node(id).op;
        let choices = policy.allowed(op);
        let mut next = Vec::with_capacity(variants.len() * choices.len());
        for v in &variants {
            for &ann in choices {
                let mut w = v.clone();
                w.node_mut(id).ann = ann;
                next.push(w);
            }
        }
        variants = next;
    }
    variants.retain(is_well_formed);
    variants
}

/// The true optimum over the full (tree × annotation) space.
///
/// Returns the best plan and its metric value.
// Invariant panic: the enumeration always yields at least one
// policy-conformant plan per tree, and conformant plans bind.
#[allow(clippy::expect_used)]
pub fn exhaustive_optimum(
    query: &QuerySpec,
    policy: Policy,
    objective: Objective,
    model: &CostModel<'_>,
) -> (Plan, f64) {
    assert!(
        query.num_relations() <= MAX_EXHAUSTIVE_RELATIONS,
        "exhaustive search over {} relations would not terminate usefully",
        query.num_relations()
    );
    let rels: Vec<RelId> = query.relations.iter().map(|r| r.id).collect();
    let mut best: Option<(Plan, f64)> = None;
    let mut plans_seen = 0u64;
    for tree in all_trees(query, &rels) {
        let skeleton = tree.into_plan(
            query,
            csqp_core::Annotation::Consumer,
            csqp_core::Annotation::Client,
        );
        for plan in all_annotations(&skeleton, policy) {
            plans_seen += 1;
            let Some(cost) = model.evaluate_plan(&plan, objective) else {
                continue;
            };
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
    }
    assert!(plans_seen > 0, "no plans enumerated");
    best.expect("at least one plan binds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{Catalog, JoinEdge, Relation, SiteId, SystemConfig};
    use csqp_simkernel::rng::SimRng;

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn catalog(n: u32, servers: u32) -> Catalog {
        let mut c = Catalog::new(servers);
        for i in 0..n {
            c.place(RelId(i), SiteId::server(1 + i % servers));
        }
        c
    }

    #[test]
    fn tree_enumeration_counts() {
        let q = chain(3);
        // Chain of 3: splits {0}|{12}, {01}|{2}, {1}|{02}(cross, skipped),
        // plus operand orders and inner shapes.
        let trees = all_trees(&q, &[RelId(0), RelId(1), RelId(2)]);
        assert!(!trees.is_empty());
        for t in &trees {
            assert_eq!(t.leaves(), 3);
        }
        // All trees distinct.
        let mut rendered: Vec<String> = trees
            .iter()
            .map(|t| {
                t.clone()
                    .into_plan(
                        &q,
                        csqp_core::Annotation::Consumer,
                        csqp_core::Annotation::Client,
                    )
                    .render_compact()
            })
            .collect();
        rendered.sort();
        let n = rendered.len();
        rendered.dedup();
        assert_eq!(rendered.len(), n, "duplicate trees enumerated");
    }

    #[test]
    fn annotation_enumeration_respects_policy_and_wellformedness() {
        let q = chain(3);
        let skeleton = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            csqp_core::Annotation::Consumer,
            csqp_core::Annotation::Client,
        );
        let ds = all_annotations(&skeleton, Policy::DataShipping);
        assert_eq!(ds.len(), 1, "DS has a single legal assignment");
        let qs = all_annotations(&skeleton, Policy::QueryShipping);
        // 2 joins × 2 annotations = 4, all well-formed.
        assert_eq!(qs.len(), 4);
        let hy = all_annotations(&skeleton, Policy::HybridShipping);
        // 3^2 × 2^3 = 72 raw, minus ill-formed ones.
        assert!(hy.len() > 40 && hy.len() <= 72, "{}", hy.len());
        for p in &hy {
            assert!(is_well_formed(p));
            Policy::HybridShipping.validate(p).unwrap();
        }
    }

    /// The headline validation: 2PO lands within 10% of the true optimum
    /// on every policy × objective combination for 3-way joins over two
    /// servers with a partially cached client.
    #[test]
    fn two_phase_is_near_optimal_on_small_queries() {
        let q = chain(3);
        let mut cat = catalog(3, 2);
        cat.set_cached_fraction(RelId(0), 1.0);
        let sys = SystemConfig::default();
        let model = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
        for policy in Policy::ALL {
            for objective in [Objective::Communication, Objective::ResponseTime] {
                let (_, exact) = exhaustive_optimum(&q, policy, objective, &model);
                let opt = crate::search::Optimizer::new(
                    &model,
                    policy,
                    objective,
                    crate::search::OptConfig::fast(),
                );
                let mut rng = SimRng::seed_from_u64(31);
                let found = opt.optimize(&q, &mut rng);
                // The search metric includes the tie-break; compare the
                // raw objective values.
                let found_raw = model.evaluate_plan(&found.plan, objective).unwrap();
                assert!(
                    found_raw <= exact * 1.10 + 1e-9,
                    "{policy}/{objective}: 2PO {found_raw} vs optimum {exact}"
                );
                // And the optimum is never better than what exhaustive
                // search says is possible.
                assert!(found_raw >= exact - 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "would not terminate")]
    fn exhaustive_rejects_big_queries() {
        let q = chain(8);
        let cat = catalog(8, 2);
        let sys = SystemConfig::default();
        let model = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
        exhaustive_optimum(&q, Policy::DataShipping, Objective::Communication, &model);
    }
}
