//! Two-phase randomized search: iterative improvement followed by
//! simulated annealing, after Ioannidis and Kang \[IK90\].
//!
//! "This study uses the same parameter settings to control the II and SA
//! phases as used in \[IK90\]" (§3.1.1, footnote 6): II restarts from
//! random plans and walks downhill to local minima; SA starts from the
//! best II plan at a temperature proportional to its cost, accepts uphill
//! moves with probability `exp(-Δ/T)`, runs a number of moves per stage
//! proportional to the join count, cools geometrically, and freezes when
//! the temperature is exhausted or several stages pass without
//! improvement. The parameters are configurable ([`OptConfig`]) with an
//! IK90-flavoured default and a `fast` preset for tests and benches.

use csqp_core::cancel::{CancelToken, StopReason};
use csqp_core::{Plan, Policy};
use csqp_cost::{CostModel, Objective};
use csqp_simkernel::rng::SimRng;

use crate::moves::MoveSet;
use crate::random::{random_neighbor, random_plan};

/// Search parameters.
#[derive(Debug, Clone)]
pub struct OptConfig {
    /// Number of II random restarts.
    pub ii_starts: usize,
    /// Consecutive non-improving neighbors before II declares a local
    /// minimum.
    pub ii_patience: usize,
    /// SA starting temperature as a fraction of the II-best cost.
    pub sa_t0_factor: f64,
    /// Geometric cooling rate per SA stage.
    pub sa_alpha: f64,
    /// SA moves per stage, per join in the query.
    pub sa_moves_per_join: usize,
    /// SA freezes after this many stages without improving the best plan.
    pub sa_frozen_stages: usize,
    /// Stop SA when the temperature falls below this fraction of the
    /// starting temperature.
    pub sa_min_temp_frac: f64,
    /// Disable the commute extension to search the paper's literal move
    /// space.
    pub paper_moves_only: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            ii_starts: 12,
            ii_patience: 50,
            sa_t0_factor: 0.1,
            sa_alpha: 0.95,
            sa_moves_per_join: 16,
            sa_frozen_stages: 4,
            sa_min_temp_frac: 1e-3,
            paper_moves_only: false,
        }
    }
}

impl OptConfig {
    /// A cheaper preset for unit tests and criterion benches.
    pub fn fast() -> OptConfig {
        OptConfig {
            ii_starts: 9,
            ii_patience: 30,
            sa_t0_factor: 0.1,
            sa_alpha: 0.9,
            sa_moves_per_join: 10,
            sa_frozen_stages: 3,
            sa_min_temp_frac: 1e-2,
            paper_moves_only: false,
        }
    }
}

/// The outcome of an optimization run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// The best plan found.
    pub plan: Plan,
    /// Its metric value under the configured objective.
    pub cost: f64,
    /// Plans evaluated across both phases (diagnostic).
    pub evaluations: u64,
}

/// The randomized two-phase optimizer.
///
/// ```
/// use csqp_catalog::{Catalog, JoinEdge, QuerySpec, RelId, Relation, SiteId, SystemConfig};
/// use csqp_core::Policy;
/// use csqp_cost::{CostModel, Objective};
/// use csqp_optimizer::{OptConfig, Optimizer};
/// use csqp_simkernel::rng::SimRng;
///
/// let query = QuerySpec::new(
///     vec![Relation::benchmark(RelId(0), "A"), Relation::benchmark(RelId(1), "B")],
///     vec![JoinEdge { a: RelId(0), b: RelId(1), selectivity: 1e-4 }],
/// );
/// let mut catalog = Catalog::new(1);
/// catalog.place(RelId(0), SiteId::server(1));
/// catalog.place(RelId(1), SiteId::server(1));
/// let sys = SystemConfig::default(); // Table 2
/// let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
///
/// let optimizer = Optimizer::new(
///     &model, Policy::QueryShipping, Objective::Communication, OptConfig::fast());
/// let result = optimizer.optimize(&query, &mut SimRng::seed_from_u64(1));
/// // One server: query shipping sends exactly the 250-page result.
/// assert_eq!(result.cost.round(), 250.0);
/// ```
pub struct Optimizer<'a> {
    model: &'a CostModel<'a>,
    policy: Policy,
    objective: Objective,
    config: OptConfig,
}

impl<'a> Optimizer<'a> {
    /// Build an optimizer over `model`, producing plans in `policy`'s
    /// space that minimize `objective`.
    pub fn new(
        model: &'a CostModel<'a>,
        policy: Policy,
        objective: Objective,
        config: OptConfig,
    ) -> Optimizer<'a> {
        Optimizer {
            model,
            policy,
            objective,
            config,
        }
    }

    /// The metric a plan is judged by. For the communication objective a
    /// small total-cost tie-break is added so that plans shipping the
    /// same page count prefer less work — in particular it steers the
    /// walk away from "free" local Cartesian products (§4.3.1: the
    /// optimizer "will not join them locally as the result would be a
    /// Cartesian product"). The weight trades 100 seconds of work per
    /// page: a cross product costs hours (thousands of page-equivalents)
    /// while legitimate plans differ by well under a page-equivalent.
    /// The full-overlap response-time model leaves many plans tied; a
    /// small total-cost term breaks those ties towards plans that do
    /// less work (which is also what the simulator rewards).
    fn eval(&self, plan: &Plan, evals: &mut u64) -> Option<f64> {
        *evals += 1;
        let primary = self.model.evaluate_plan(plan, self.objective)?;
        Some(match self.objective {
            Objective::Communication => {
                primary + 1e-2 * self.model.evaluate_plan(plan, Objective::TotalCost)?
            }
            Objective::ResponseTime => {
                primary + 1e-3 * self.model.evaluate_plan(plan, Objective::TotalCost)?
            }
            Objective::TotalCost => primary,
        })
    }

    fn move_set(&self) -> MoveSet {
        let mut set = MoveSet::for_policy(self.policy);
        if self.config.paper_moves_only {
            set.commute = false;
        }
        set
    }

    /// Run two-phase optimization (II then SA).
    pub fn optimize(&self, query: &csqp_catalog::QuerySpec, rng: &mut SimRng) -> OptResult {
        let inert = CancelToken::inert();
        match self.optimize_guarded(query, rng, &inert) {
            Ok(r) => r,
            // An inert token never reports a stop reason.
            Err(_) => unreachable!("inert cancel token cannot stop the search"),
        }
    }

    /// Run two-phase optimization (II then SA), probing `guard` between
    /// search steps. Returns `Err` the moment the token reports a stop
    /// reason — the serving layer uses this to abandon dead work (a
    /// vanished client, an expired deadline) within a few cost-model
    /// evaluations instead of finishing the whole search.
    pub fn optimize_guarded(
        &self,
        query: &csqp_catalog::QuerySpec,
        rng: &mut SimRng,
        guard: &CancelToken,
    ) -> Result<OptResult, StopReason> {
        let mut evals = 0;
        let (plan, cost) = self.iterative_improvement(query, rng, &mut evals, guard)?;
        let (plan, cost) = self.simulated_annealing(plan, cost, rng, &mut evals, guard)?;
        Ok(OptResult {
            plan,
            cost,
            evaluations: evals,
        })
    }

    /// Run only the site-selection half of the search (annotation moves)
    /// from a fixed starting plan — used by 2-step optimization at query
    /// execution time (§5).
    ///
    /// # Panics
    /// Panics when `start` does not bind: 2-step hands this function the
    /// compile-time plan, which bound when it was produced.
    pub fn site_selection(&self, start: Plan, rng: &mut SimRng) -> OptResult {
        let inert = CancelToken::inert();
        match self.site_selection_guarded(start, rng, &inert) {
            Ok(r) => r,
            // An inert token never reports a stop reason.
            Err(_) => unreachable!("inert cancel token cannot stop the search"),
        }
    }

    /// Cancellable [`Optimizer::site_selection`]: probes `guard` between
    /// annotation moves and stops with the token's reason.
    ///
    /// # Panics
    /// Panics when `start` does not bind, exactly like `site_selection`.
    #[allow(clippy::expect_used)]
    pub fn site_selection_guarded(
        &self,
        start: Plan,
        rng: &mut SimRng,
        guard: &CancelToken,
    ) -> Result<OptResult, StopReason> {
        let mut evals = 0;
        let cost = self
            .eval(&start, &mut evals)
            .expect("starting plan must be bindable");
        let set = MoveSet::site_selection_only();
        let (plan, cost) = self.descend(start, cost, set, rng, &mut evals, guard)?;
        let (plan, cost) = self.anneal(plan, cost, set, rng, &mut evals, guard)?;
        Ok(OptResult {
            plan,
            cost,
            evaluations: evals,
        })
    }

    /// Phase 1: iterative improvement over random restarts.
    ///
    /// For hybrid shipping, restarts cycle through plans drawn from the
    /// hybrid, data-shipping and query-shipping spaces: every pure plan
    /// is a legal hybrid plan (§2.2.3), and seeding with them guarantees
    /// the larger search space never converges *worse* than a pure
    /// policy would, matching the paper's "hybrid-shipping at least
    /// matches the best performance of data and query shipping".
    // Invariant panic: `random_plan` returns checker-verified plans and
    // those always bind, so the first start already populates `best`.
    #[allow(clippy::expect_used)]
    fn iterative_improvement(
        &self,
        query: &csqp_catalog::QuerySpec,
        rng: &mut SimRng,
        evals: &mut u64,
        guard: &CancelToken,
    ) -> Result<(Plan, f64), StopReason> {
        let set = self.move_set();
        let start_spaces: &[Policy] = match self.policy {
            Policy::HybridShipping => &[
                Policy::HybridShipping,
                Policy::DataShipping,
                Policy::QueryShipping,
            ],
            p => std::slice::from_ref(match p {
                Policy::DataShipping => &Policy::DataShipping,
                _ => &Policy::QueryShipping,
            }),
        };
        // The hybrid space is roughly the union of three spaces; give it a
        // proportionally larger restart budget (the paper instead gave the
        // optimizer a generous fixed time budget, ~40 s per query on a
        // 1996 workstation, §3.1.1).
        let starts = match self.policy {
            Policy::HybridShipping => 2 * self.config.ii_starts.max(1),
            _ => self.config.ii_starts.max(1),
        };
        let mut best: Option<(Plan, f64)> = None;
        for i in 0..starts {
            if let Some(reason) = guard.stop_reason() {
                // Stop between restarts only if nothing usable exists yet;
                // otherwise the caller still prefers a stop to a stale plan.
                return Err(reason);
            }
            let space = start_spaces[i % start_spaces.len()];
            let start = random_plan(query, space, rng);
            let Some(mut cost) = self.eval(&start, evals) else {
                continue;
            };
            let mut plan = start;
            if space != self.policy {
                // First converge inside the pure space (cheap, small
                // neighborhood), then refine with the full hybrid moves.
                let pure_set = MoveSet::for_policy(space);
                (plan, cost) = self.descend_in(space, plan, cost, pure_set, rng, evals, guard)?;
            }
            let (plan, cost) = self.descend(plan, cost, set, rng, evals, guard)?;
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
        Ok(best.expect("at least one random start must bind"))
    }

    /// Greedy descent to a local minimum (in this optimizer's policy).
    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        plan: Plan,
        cost: f64,
        set: MoveSet,
        rng: &mut SimRng,
        evals: &mut u64,
        guard: &CancelToken,
    ) -> Result<(Plan, f64), StopReason> {
        self.descend_in(self.policy, plan, cost, set, rng, evals, guard)
    }

    /// Greedy descent restricted to `space`'s moves.
    ///
    /// The give-up patience scales with the size of the current move
    /// list: a hybrid 10-way plan has dozens of applicable moves, and a
    /// fixed small patience would declare a "local minimum" long before
    /// the neighborhood was sampled (IK90 define a local minimum by the
    /// neighborhood, not by a fixed number of draws).
    #[allow(clippy::too_many_arguments)]
    fn descend_in(
        &self,
        space: Policy,
        mut plan: Plan,
        mut cost: f64,
        set: MoveSet,
        rng: &mut SimRng,
        evals: &mut u64,
        guard: &CancelToken,
    ) -> Result<(Plan, f64), StopReason> {
        let mut stuck = 0;
        let mut patience = self
            .config
            .ii_patience
            .max(3 * crate::moves::applicable_moves(&plan, space, set).len());
        while stuck < patience {
            if let Some(reason) = guard.stop_reason() {
                return Err(reason);
            }
            match random_neighbor(&plan, self.model.query(), space, set, rng) {
                Some((cand, _)) => match self.eval(&cand, evals) {
                    Some(c) if c < cost => {
                        plan = cand;
                        cost = c;
                        stuck = 0;
                        patience = self
                            .config
                            .ii_patience
                            .max(3 * crate::moves::applicable_moves(&plan, space, set).len());
                    }
                    _ => stuck += 1,
                },
                None => stuck += 1,
            }
        }
        Ok((plan, cost))
    }

    /// Phase 2: simulated annealing from the II-best plan.
    fn simulated_annealing(
        &self,
        plan: Plan,
        cost: f64,
        rng: &mut SimRng,
        evals: &mut u64,
        guard: &CancelToken,
    ) -> Result<(Plan, f64), StopReason> {
        self.anneal(plan, cost, self.move_set(), rng, evals, guard)
    }

    #[allow(clippy::too_many_arguments)]
    fn anneal(
        &self,
        start: Plan,
        start_cost: f64,
        set: MoveSet,
        rng: &mut SimRng,
        evals: &mut u64,
        guard: &CancelToken,
    ) -> Result<(Plan, f64), StopReason> {
        let joins = start.join_nodes().len().max(1);
        let moves_per_stage = self.config.sa_moves_per_join * joins;
        let t0 = self.config.sa_t0_factor * start_cost.max(f64::MIN_POSITIVE);
        let mut t = t0;
        let (mut cur, mut cur_cost) = (start.clone(), start_cost);
        let (mut best, mut best_cost) = (start, start_cost);
        let mut stages_without_improvement = 0;

        while t > self.config.sa_min_temp_frac * t0
            && stages_without_improvement < self.config.sa_frozen_stages
        {
            let mut improved = false;
            for _ in 0..moves_per_stage {
                if let Some(reason) = guard.stop_reason() {
                    return Err(reason);
                }
                let Some((cand, _)) =
                    random_neighbor(&cur, self.model.query(), self.policy, set, rng)
                else {
                    continue;
                };
                let Some(c) = self.eval(&cand, evals) else {
                    continue;
                };
                let delta = c - cur_cost;
                if delta <= 0.0 || rng.unit() < (-delta / t).exp() {
                    cur = cand;
                    cur_cost = c;
                    if cur_cost < best_cost {
                        best = cur.clone();
                        best_cost = cur_cost;
                        improved = true;
                    }
                }
            }
            if improved {
                stages_without_improvement = 0;
            } else {
                stages_without_improvement += 1;
            }
            t *= self.config.sa_alpha;
        }
        Ok((best, best_cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{Catalog, JoinEdge, QuerySpec, RelId, Relation, SiteId, SystemConfig};
    use csqp_core::{bind, BindContext, LogicalOp};

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn catalog(n_rels: u32, n_servers: u32) -> Catalog {
        let mut c = Catalog::new(n_servers);
        for i in 0..n_rels {
            c.place(RelId(i), SiteId::server(1 + i % n_servers));
        }
        c
    }

    #[test]
    fn qs_minimizes_communication_to_result_size() {
        // One server: the known optimum is shipping only the 250-page
        // result (Fig 2's QS line).
        let q = chain(2);
        let cat = catalog(2, 1);
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let opt = Optimizer::new(
            &model,
            Policy::QueryShipping,
            Objective::Communication,
            OptConfig::fast(),
        );
        let mut rng = SimRng::seed_from_u64(2);
        let res = opt.optimize(&q, &mut rng);
        assert!((res.cost - 250.0).abs() < 1.0, "cost {}", res.cost);
    }

    #[test]
    fn hybrid_matches_best_pure_policy_on_communication() {
        // Fig 2's key claim: HY = min(DS, QS) everywhere.
        let q = chain(2);
        let cfg = SystemConfig::default();
        for cached in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut cat = catalog(2, 1);
            cat.set_cached_fraction(RelId(0), cached);
            cat.set_cached_fraction(RelId(1), cached);
            let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
            let mut results = std::collections::HashMap::new();
            for policy in Policy::ALL {
                let opt =
                    Optimizer::new(&model, policy, Objective::Communication, OptConfig::fast());
                let mut rng = SimRng::seed_from_u64(77);
                let res = opt.optimize(&q, &mut rng);
                results.insert(policy.short(), res.cost.round());
            }
            let hy = results["HY"];
            let best_pure = results["DS"].min(results["QS"]);
            assert!(
                hy <= best_pure + 1.0,
                "cached {cached}: HY {hy} vs best pure {best_pure} ({results:?})"
            );
        }
    }

    #[test]
    fn optimizer_respects_policy_and_wellformedness() {
        let q = chain(5);
        let cat = catalog(5, 3);
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        for policy in Policy::ALL {
            let opt = Optimizer::new(&model, policy, Objective::ResponseTime, OptConfig::fast());
            let mut rng = SimRng::seed_from_u64(13);
            let res = opt.optimize(&q, &mut rng);
            res.plan.validate_structure(&q).unwrap();
            policy.validate(&res.plan).unwrap();
            assert!(csqp_core::is_well_formed(&res.plan));
            assert!(res.evaluations > 10);
        }
    }

    #[test]
    fn optimization_is_deterministic_per_seed() {
        let q = chain(4);
        let cat = catalog(4, 2);
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let opt = Optimizer::new(
            &model,
            Policy::HybridShipping,
            Objective::ResponseTime,
            OptConfig::fast(),
        );
        let a = opt.optimize(&q, &mut SimRng::seed_from_u64(42));
        let b = opt.optimize(&q, &mut SimRng::seed_from_u64(42));
        assert_eq!(a.plan.render_compact(), b.plan.render_compact());
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn site_selection_keeps_join_order() {
        let q = chain(4);
        let cat = catalog(4, 2);
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let opt = Optimizer::new(
            &model,
            Policy::HybridShipping,
            Objective::ResponseTime,
            OptConfig::fast(),
        );
        let mut rng = SimRng::seed_from_u64(3);
        let start = crate::random::random_plan(&q, Policy::HybridShipping, &mut rng);
        let res = opt.site_selection(start.clone(), &mut rng);
        // Join order (leaf sequence) unchanged; only annotations may move.
        let leaves = |p: &Plan| -> Vec<String> {
            p.postorder()
                .into_iter()
                .filter_map(|id| match p.node(id).op {
                    LogicalOp::Scan { rel } => Some(rel.to_string()),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(leaves(&start), leaves(&res.plan));
    }

    #[test]
    fn cancelled_token_stops_search_immediately() {
        let q = chain(4);
        let cat = catalog(4, 2);
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let opt = Optimizer::new(
            &model,
            Policy::HybridShipping,
            Objective::ResponseTime,
            OptConfig::fast(),
        );
        let token = CancelToken::inert();
        token.cancel();
        let mut rng = SimRng::seed_from_u64(42);
        let res = opt.optimize_guarded(&q, &mut rng, &token);
        assert_eq!(res.err(), Some(StopReason::Cancelled));
    }

    #[test]
    fn expired_deadline_stops_search_with_typed_reason() {
        let q = chain(4);
        let cat = catalog(4, 2);
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let opt = Optimizer::new(
            &model,
            Policy::HybridShipping,
            Objective::ResponseTime,
            OptConfig::fast(),
        );
        let token = CancelToken::expired();
        let mut rng = SimRng::seed_from_u64(42);
        let res = opt.optimize_guarded(&q, &mut rng, &token);
        assert_eq!(res.err(), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn guarded_search_matches_unguarded_with_inert_token() {
        let q = chain(4);
        let cat = catalog(4, 2);
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let opt = Optimizer::new(
            &model,
            Policy::HybridShipping,
            Objective::ResponseTime,
            OptConfig::fast(),
        );
        let a = opt.optimize(&q, &mut SimRng::seed_from_u64(7));
        let token = CancelToken::inert();
        let b = opt
            .optimize_guarded(&q, &mut SimRng::seed_from_u64(7), &token)
            .unwrap();
        assert_eq!(a.plan.render_compact(), b.plan.render_compact());
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn hybrid_avoids_cross_products_on_chains() {
        let q = chain(6);
        let cat = catalog(6, 3);
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let opt = Optimizer::new(
            &model,
            Policy::HybridShipping,
            Objective::TotalCost,
            OptConfig::fast(),
        );
        let res = opt.optimize(&q, &mut SimRng::seed_from_u64(8));
        for j in res.plan.join_nodes() {
            let n = res.plan.node(j);
            let l = res.plan.rel_set(n.children[0].unwrap());
            let r = res.plan.rel_set(n.children[1].unwrap());
            assert!(q.joinable(l, r), "cross product survived: {}", res.plan);
        }
        // And the result binds.
        bind(
            &res.plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
    }
}
