//! System-R-style dynamic-programming join ordering.
//!
//! §5 lists the compile-time half of 2-step optimization as "e.g., using
//! a randomized \[IK90\] or System-R-style \[S+79\] optimizer". This module
//! provides the Selinger alternative: exact dynamic programming over
//! connected relation subsets, minimizing the classic surrogate cost —
//! the total size (in pages) of all intermediate results. Unlike the
//! original System-R, bushy trees are enumerated (the study's
//! multi-server setting rewards them, §5.2).
//!
//! Cross products are only considered when a subset has no connected
//! split at all (disconnected join graphs), mirroring the usual
//! System-R heuristic.

use std::collections::HashMap;

use csqp_catalog::{Estimator, QuerySpec, RelSet, SystemConfig};
use csqp_core::JoinTree;

/// Best partial plan for a relation subset.
#[derive(Debug, Clone)]
struct Entry {
    tree: JoinTree,
    /// Total intermediate pages accumulated building this subset.
    cost: f64,
}

/// Compute the DP-optimal join tree for `query` (minimum total
/// intermediate result pages, bushy trees allowed).
///
/// # Panics
/// Panics on queries with zero relations or more than 20 (the DP table
/// is exponential; the study's queries have at most 10).
// Invariant panic: every singleton seeds the table and every superset
// combines two table entries, so the full relation set always has one.
#[allow(clippy::expect_used)]
pub fn dp_join_order(query: &QuerySpec, config: &SystemConfig) -> JoinTree {
    let n = query.num_relations();
    assert!(n >= 1, "empty query");
    assert!(
        n <= 20,
        "DP join ordering is exponential; {n} relations is too many"
    );
    let est = Estimator::new(query, config);

    let mut table: HashMap<u64, Entry> = HashMap::new();
    for r in &query.relations {
        let s = RelSet::single(r.id);
        table.insert(
            s.0,
            Entry {
                tree: JoinTree::leaf(r.id),
                cost: 0.0,
            },
        );
    }

    let full = query.all_rels().0;
    // Enumerate subsets in increasing popcount so both halves of every
    // split are already solved.
    let mut subsets: Vec<u64> = (1..=full).filter(|s| s & full == *s).collect();
    subsets.sort_by_key(|s| s.count_ones());

    for &s in &subsets {
        if s.count_ones() < 2 {
            continue;
        }
        let mut best: Option<Entry> = None;
        let mut best_cross: Option<Entry> = None;
        // Enumerate proper sub-splits: iterate submasks.
        let mut l = (s - 1) & s;
        while l > 0 {
            let r = s & !l;
            if l < r {
                // Each unordered split is seen twice; canonicalize by
                // handling l >= r only (orientation handled below).
                l = (l - 1) & s;
                continue;
            }
            if let (Some(le), Some(re)) = (table.get(&l), table.get(&r)) {
                let ls = RelSet(l);
                let rs = RelSet(r);
                let joinable = query.joinable(ls, rs);
                let out_pages = est.pages(RelSet(s));
                let cost = le.cost + re.cost + out_pages;
                // Build side: the smaller input (hybrid hash builds on
                // the inner), deterministic tie-break on the mask.
                let (inner, outer) = if est.pages(ls) <= est.pages(rs) {
                    (le.tree.clone(), re.tree.clone())
                } else {
                    (re.tree.clone(), le.tree.clone())
                };
                let entry = Entry {
                    tree: JoinTree::join(inner, outer),
                    cost,
                };
                let slot = if joinable { &mut best } else { &mut best_cross };
                if slot.as_ref().is_none_or(|b| cost < b.cost) {
                    *slot = Some(entry);
                }
            }
            l = (l - 1) & s;
        }
        // Prefer connected plans; fall back to the cheapest cross product
        // only when the subgraph is disconnected.
        if let Some(e) = best.or(best_cross) {
            table.insert(s, e);
        }
    }

    table
        .remove(&full)
        .expect("full relation set always has a plan")
        .tree
}

/// The surrogate cost (total intermediate pages) of a given tree — used
/// by tests to compare DP against alternatives.
pub fn intermediate_pages(tree: &JoinTree, query: &QuerySpec, config: &SystemConfig) -> f64 {
    let est = Estimator::new(query, config);
    fn rec(t: &JoinTree, est: &Estimator<'_>) -> (RelSet, f64) {
        match t {
            JoinTree::Leaf(r) => (RelSet::single(*r), 0.0),
            JoinTree::Node(l, r) => {
                let (ls, lc) = rec(l, est);
                let (rs, rc) = rec(r, est);
                let s = ls.union(rs);
                (s, lc + rc + est.pages(s))
            }
        }
    }
    rec(tree, &est).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{JoinEdge, RelId, Relation};
    use csqp_simkernel::rng::SimRng;

    fn chain(n: u32, sel: f64) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: sel,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    #[test]
    fn dp_produces_valid_trees() {
        let cfg = SystemConfig::default();
        for n in [1u32, 2, 3, 5, 8, 10] {
            let q = chain(n, 1e-4);
            let t = dp_join_order(&q, &cfg);
            assert_eq!(t.leaves(), n as usize);
            let plan = t.into_plan(
                &q,
                csqp_core::Annotation::Consumer,
                csqp_core::Annotation::Client,
            );
            plan.validate_structure(&q).unwrap();
        }
    }

    #[test]
    fn dp_avoids_cross_products_on_connected_graphs() {
        let cfg = SystemConfig::default();
        let q = chain(6, 1e-4);
        let t = dp_join_order(&q, &cfg);
        fn check(t: &JoinTree, q: &QuerySpec) -> RelSet {
            match t {
                JoinTree::Leaf(r) => RelSet::single(*r),
                JoinTree::Node(l, r) => {
                    let ls = check(l, q);
                    let rs = check(r, q);
                    assert!(q.joinable(ls, rs), "cross product in DP plan");
                    ls.union(rs)
                }
            }
        }
        check(&t, &q);
    }

    #[test]
    fn dp_beats_or_matches_random_trees() {
        let cfg = SystemConfig::default();
        // HiSel chains make order matter (intermediates shrink).
        let q = chain(7, 2e-5);
        let dp = dp_join_order(&q, &cfg);
        let dp_cost = intermediate_pages(&dp, &q, &cfg);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..50 {
            let t = crate::random::random_join_tree(&q, &mut rng);
            let c = intermediate_pages(&t, &q, &cfg);
            assert!(dp_cost <= c + 1e-9, "random tree beat DP: {c} < {dp_cost}");
        }
    }

    #[test]
    fn dp_handles_disconnected_graphs_via_cross_products() {
        // Two disjoint joined pairs: the DP must still produce a full
        // tree (with one unavoidable cross product).
        let rels = (0..4)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = vec![
            JoinEdge {
                a: RelId(0),
                b: RelId(1),
                selectivity: 1e-4,
            },
            JoinEdge {
                a: RelId(2),
                b: RelId(3),
                selectivity: 1e-4,
            },
        ];
        let q = QuerySpec::new(rels, edges);
        let cfg = SystemConfig::default();
        let t = dp_join_order(&q, &cfg);
        assert_eq!(t.leaves(), 4);
    }

    #[test]
    fn hisel_dp_prefers_small_intermediates() {
        // On a HiSel chain the balanced tree has smaller intermediates
        // than the worst deep tree; DP must be at least as good as the
        // canonical left-deep order.
        let cfg = SystemConfig::default();
        let q = chain(8, 2e-5);
        let dp_cost = intermediate_pages(&dp_join_order(&q, &cfg), &q, &cfg);
        let deep = JoinTree::left_deep(&(0..8).map(RelId).collect::<Vec<_>>());
        assert!(dp_cost <= intermediate_pages(&deep, &q, &cfg));
    }
}
