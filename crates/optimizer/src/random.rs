//! Policy-restricted random plan generation.
//!
//! "The optimizer first chooses a random plan from the desired search
//! space (i.e., data, query, or hybrid-shipping)…" (§3.1.1)
//!
//! A random join tree is grown by repeatedly merging two random subtrees
//! of a forest, preferring joinable pairs (pairs connected by a join-graph
//! edge) so the starting point is rarely a Cartesian product — the cost
//! model prices cross products truthfully, so the walk would escape them
//! anyway, but starting connected converges faster. Annotations are drawn
//! uniformly from the policy's Table 1 row, then repaired until the plan
//! is well-formed (§2.2.3: "it is very easy to 'sort out' ill-formed
//! plans during query optimization").

use csqp_catalog::{QuerySpec, RelSet};
use csqp_core::{Annotation, JoinTree, Plan, Policy};
use csqp_simkernel::rng::SimRng;

use crate::moves::{applicable_moves, apply_move_verified, MoveKind, MoveSet};

/// Generate a random plan in `policy`'s search space.
pub fn random_plan(query: &QuerySpec, policy: Policy, rng: &mut SimRng) -> Plan {
    let tree = random_join_tree(query, rng);
    // Start from a uniform valid skeleton, then randomize annotations.
    let (jann, sann) = match policy {
        Policy::DataShipping => (Annotation::Consumer, Annotation::Client),
        _ => (Annotation::InnerRel, Annotation::PrimaryCopy),
    };
    let mut plan = tree.into_plan(query, jann, sann);
    randomize_annotations(&mut plan, policy, rng);
    #[cfg(debug_assertions)]
    {
        let report = csqp_verify::check_logical(&plan, query, policy);
        debug_assert!(
            report.is_clean(),
            "random_plan produced an invalid plan:\n{report}"
        );
    }
    plan
}

/// Redraw every annotation uniformly from the policy's allowed set, then
/// repair any two-node cycles.
pub fn randomize_annotations(plan: &mut Plan, policy: Policy, rng: &mut SimRng) {
    for id in plan.postorder() {
        let op = plan.node(id).op;
        let allowed = policy.allowed(op);
        plan.node_mut(id).ann = *rng.pick(allowed);
    }
    repair_wellformedness(plan, policy, rng);
}

/// Re-randomize the upward-pointing half of each two-node cycle until the
/// plan is well-formed. Terminates: each repair removes one cycle and can
/// only create a new one at the repaired node's own children, and the
/// repaired annotation is drawn from non-`consumer` options when any
/// exist (they always do for joins and selects under hybrid shipping; the
/// pure policies never produce cycles in the first place).
pub fn repair_wellformedness(plan: &mut Plan, policy: Policy, rng: &mut SimRng) {
    for _ in 0..plan.arena_len() * 4 {
        match csqp_core::wellformed::find_cycle(plan) {
            None => return,
            Some((_, child)) => {
                let op = plan.node(child).op;
                let non_up: Vec<Annotation> = policy
                    .allowed(op)
                    .iter()
                    .copied()
                    .filter(|a| !a.points_up())
                    .collect();
                assert!(
                    !non_up.is_empty(),
                    "cannot repair cycle at {child:?}: every allowed annotation points up"
                );
                plan.node_mut(child).ann = *rng.pick(&non_up);
            }
        }
    }
    panic!("well-formedness repair did not converge (bug)");
}

/// Grow a random join tree over the query's relations.
// Invariant panic: the forest starts with one tree per relation and each
// round joins two into one, so exactly one tree remains at the end.
#[allow(clippy::expect_used)]
pub fn random_join_tree(query: &QuerySpec, rng: &mut SimRng) -> JoinTree {
    assert!(query.num_relations() > 0, "empty query");
    let mut forest: Vec<(JoinTree, RelSet)> = query
        .relations
        .iter()
        .map(|r| (JoinTree::leaf(r.id), RelSet::single(r.id)))
        .collect();
    while forest.len() > 1 {
        // Prefer a joinable pair; fall back to any pair (cross product).
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..forest.len() {
            for j in 0..forest.len() {
                if i != j && query.joinable(forest[i].1, forest[j].1) {
                    pairs.push((i, j));
                }
            }
        }
        let (i, j) = if pairs.is_empty() {
            let i = rng.below(forest.len());
            let mut j = rng.below(forest.len() - 1);
            if j >= i {
                j += 1;
            }
            (i, j)
        } else {
            *rng.pick(&pairs)
        };
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        let (t_hi, s_hi) = forest.swap_remove(hi);
        let (t_lo, s_lo) = forest.swap_remove(lo);
        // Random build/probe orientation.
        let (inner, outer, si, so) = if rng.chance(0.5) {
            (t_hi, t_lo, s_hi, s_lo)
        } else {
            (t_lo, t_hi, s_lo, s_hi)
        };
        forest.push((JoinTree::join(inner, outer), si.union(so)));
    }
    forest.pop().expect("non-empty forest").0
}

/// Take one uniformly random applicable move, returning a
/// checker-verified plan (see
/// [`apply_move_verified`]); `None`
/// when the move would break well-formedness or nothing applies.
pub fn random_neighbor(
    plan: &Plan,
    query: &QuerySpec,
    policy: Policy,
    set: MoveSet,
    rng: &mut SimRng,
) -> Option<(Plan, MoveKind)> {
    let moves = applicable_moves(plan, policy, set);
    if moves.is_empty() {
        return None;
    }
    let mv = *rng.pick(&moves);
    let candidate = apply_move_verified(plan, mv, query, policy)?;
    Some((candidate, mv.kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{JoinEdge, RelId, Relation};
    use csqp_core::is_well_formed;

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    #[test]
    fn random_plans_are_valid_for_their_policy() {
        let q = chain(6);
        let mut rng = SimRng::seed_from_u64(11);
        for policy in Policy::ALL {
            for _ in 0..50 {
                let p = random_plan(&q, policy, &mut rng);
                p.validate_structure(&q).unwrap();
                policy.validate(&p).unwrap();
                assert!(is_well_formed(&p));
            }
        }
    }

    #[test]
    fn random_trees_avoid_cross_products_on_chains() {
        // Chains always admit a connected merge order, so no cross
        // products should appear.
        let q = chain(8);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..30 {
            let tree = random_join_tree(&q, &mut rng);
            let plan = tree.into_plan(&q, Annotation::Consumer, Annotation::Client);
            for j in plan.join_nodes() {
                let n = plan.node(j);
                let l = plan.rel_set(n.children[0].unwrap());
                let r = plan.rel_set(n.children[1].unwrap());
                assert!(q.joinable(l, r), "cross product in {plan}");
            }
        }
    }

    #[test]
    fn random_trees_cover_multiple_shapes() {
        let q = chain(5);
        let mut rng = SimRng::seed_from_u64(7);
        let shapes: std::collections::HashSet<String> = (0..40)
            .map(|_| {
                random_join_tree(&q, &mut rng)
                    .into_plan(&q, Annotation::Consumer, Annotation::Client)
                    .render_compact()
            })
            .collect();
        assert!(shapes.len() > 5, "only {} distinct shapes", shapes.len());
    }

    #[test]
    fn neighbor_is_well_formed_and_valid() {
        let q = chain(4);
        let mut rng = SimRng::seed_from_u64(5);
        let mut ok = 0;
        for policy in Policy::ALL {
            let mut plan = random_plan(&q, policy, &mut rng);
            for _ in 0..100 {
                if let Some((next, _)) =
                    random_neighbor(&plan, &q, policy, MoveSet::for_policy(policy), &mut rng)
                {
                    next.validate_structure(&q).unwrap();
                    policy.validate(&next).unwrap();
                    assert!(is_well_formed(&next));
                    plan = next;
                    ok += 1;
                }
            }
        }
        assert!(ok > 100, "too few successful moves: {ok}");
    }

    #[test]
    fn repair_fixes_injected_cycle() {
        let q = chain(3);
        let mut rng = SimRng::seed_from_u64(9);
        let mut plan = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::PrimaryCopy,
        );
        let joins = plan.join_nodes();
        plan.node_mut(joins[1]).ann = Annotation::InnerRel;
        assert!(!is_well_formed(&plan));
        repair_wellformedness(&mut plan, Policy::HybridShipping, &mut rng);
        assert!(is_well_formed(&plan));
        Policy::HybridShipping.validate(&plan).unwrap();
    }

    #[test]
    fn single_relation_query_yields_leaf() {
        let q = QuerySpec::new(vec![Relation::benchmark(RelId(0), "A")], vec![]);
        let mut rng = SimRng::seed_from_u64(1);
        let t = random_join_tree(&q, &mut rng);
        assert_eq!(t, JoinTree::leaf(RelId(0)));
    }
}
