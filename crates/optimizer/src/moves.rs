//! Plan transformation moves (§3.1.1).
//!
//! "On each step, the optimizer performs one transformation of the plan.
//! The possible moves are the following (where A, B, and C denote either
//! temporary or base relations):
//!
//! 1. (A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)
//! 2. (A ⋈ B) ⋈ C → B ⋈ (A ⋈ C)
//! 3. A ⋈ (B ⋈ C) → (A ⋈ B) ⋈ C
//! 4. A ⋈ (B ⋈ C) → (A ⋈ C) ⋈ B
//! 5. Change the site annotation of a join to consumer, outer relation,
//!    or inner relation.
//! 6. Change the site annotation of a select from consumer to producer or
//!    vice versa.
//! 7. Change the site annotation of a scan from client to primary copy or
//!    vice versa."
//!
//! We add an explicit **commute** move (`A ⋈ B → B ⋈ A`) as a documented
//! extension: hybrid-hash cost is asymmetric in the build side, and the
//! paper's move 2 only swaps operands as a side effect of reassociation,
//! which cannot flip the build side of a 2-way join at all. The extension
//! can be disabled (`paper_moves_only`) to search the paper's exact space.
//!
//! A move application returns a *new* plan (the optimizer keeps the old
//! one for rejection); moves that would produce an ill-formed plan
//! (annotation cycle, §2.2.3) are filtered out by the caller via
//! [`csqp_core::is_well_formed`].

use csqp_catalog::QuerySpec;
use csqp_core::{Annotation, LogicalOp, NodeId, Plan, Policy};

/// The kind of a transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveKind {
    /// Extension: swap build and probe inputs of a join.
    Commute,
    /// Move 1: `(A⋈B)⋈C → A⋈(B⋈C)`.
    AssocLeft,
    /// Move 2: `(A⋈B)⋈C → B⋈(A⋈C)`.
    ExchangeLeft,
    /// Move 3: `A⋈(B⋈C) → (A⋈B)⋈C`.
    AssocRight,
    /// Move 4: `A⋈(B⋈C) → (A⋈C)⋈B`.
    ExchangeRight,
    /// Move 5: set a join's annotation.
    JoinAnnotation(Annotation),
    /// Move 6: flip a select's annotation.
    SelectAnnotation(Annotation),
    /// Move 7: flip a scan's annotation.
    ScanAnnotation(Annotation),
}

impl MoveKind {
    /// True for the join-order moves (1–4 and commute).
    pub fn is_order_move(self) -> bool {
        matches!(
            self,
            MoveKind::Commute
                | MoveKind::AssocLeft
                | MoveKind::ExchangeLeft
                | MoveKind::AssocRight
                | MoveKind::ExchangeRight
        )
    }
}

/// A move anchored at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// The node the transformation applies to.
    pub node: NodeId,
    /// The transformation.
    pub kind: MoveKind,
}

/// Which move families the search may use.
#[derive(Debug, Clone, Copy)]
pub struct MoveSet {
    /// Join-order moves 1–4.
    pub order_moves: bool,
    /// The commute extension.
    pub commute: bool,
    /// Site-annotation moves 5–7 (filtered by policy).
    pub site_moves: bool,
}

impl MoveSet {
    /// The move set the paper prescribes for a policy (§3.1.1):
    /// data-shipping gets only join-order moves; query-shipping gets
    /// order moves plus the restricted join-annotation move; hybrid gets
    /// everything. `commute` follows `order_moves` here; callers wanting
    /// the paper's literal move list can clear it.
    pub fn for_policy(_policy: Policy) -> MoveSet {
        MoveSet {
            order_moves: true,
            commute: true,
            site_moves: true,
        }
    }

    /// Only site-annotation moves — the runtime half of 2-step
    /// optimization (§5: "At execution time, carry out site selection").
    pub fn site_selection_only() -> MoveSet {
        MoveSet {
            order_moves: false,
            commute: false,
            site_moves: true,
        }
    }
}

/// Enumerate every applicable move on `plan` under `policy`.
///
/// Policy filtering implements §3.1.1 exactly: for data-shipping all site
/// moves vanish (each operator has a single legal annotation); for
/// query-shipping scans stay on primary copies, selects stay with their
/// scans, and "a join is never moved to the site of its consumer".
pub fn applicable_moves(plan: &Plan, policy: Policy, set: MoveSet) -> Vec<Move> {
    let mut out = Vec::new();
    for id in plan.postorder() {
        let n = plan.node(id);
        match n.op {
            LogicalOp::Join => {
                if set.order_moves {
                    if set.commute {
                        out.push(Move {
                            node: id,
                            kind: MoveKind::Commute,
                        });
                    }
                    let left_is_join = n.children[0]
                        .map(|c| matches!(plan.node(c).op, LogicalOp::Join))
                        .unwrap_or(false);
                    let right_is_join = n.children[1]
                        .map(|c| matches!(plan.node(c).op, LogicalOp::Join))
                        .unwrap_or(false);
                    if left_is_join {
                        out.push(Move {
                            node: id,
                            kind: MoveKind::AssocLeft,
                        });
                        out.push(Move {
                            node: id,
                            kind: MoveKind::ExchangeLeft,
                        });
                    }
                    if right_is_join {
                        out.push(Move {
                            node: id,
                            kind: MoveKind::AssocRight,
                        });
                        out.push(Move {
                            node: id,
                            kind: MoveKind::ExchangeRight,
                        });
                    }
                }
                if set.site_moves {
                    for &ann in policy.allowed(LogicalOp::Join) {
                        if ann != n.ann {
                            out.push(Move {
                                node: id,
                                kind: MoveKind::JoinAnnotation(ann),
                            });
                        }
                    }
                }
            }
            LogicalOp::Select { .. } | LogicalOp::Aggregate { .. } => {
                // Footnote 4: aggregations are annotated like selections,
                // so move 6 covers both unary operators.
                if set.site_moves {
                    for &ann in policy.allowed(n.op) {
                        if ann != n.ann {
                            out.push(Move {
                                node: id,
                                kind: MoveKind::SelectAnnotation(ann),
                            });
                        }
                    }
                }
            }
            LogicalOp::Scan { .. } => {
                if set.site_moves {
                    for &ann in policy.allowed(n.op) {
                        if ann != n.ann {
                            out.push(Move {
                                node: id,
                                kind: MoveKind::ScanAnnotation(ann),
                            });
                        }
                    }
                }
            }
            LogicalOp::Display => {}
        }
    }
    out
}

/// Apply `mv` to a copy of `plan`. Returns `None` when the move does not
/// apply at that node (caller raced a stale move list) — never panics on
/// structurally valid plans.
pub fn apply_move(plan: &Plan, mv: Move) -> Option<Plan> {
    let mut p = plan.clone();
    let n = p.node(mv.node).clone();
    match mv.kind {
        MoveKind::Commute => {
            if n.op != LogicalOp::Join {
                return None;
            }
            let node = p.node_mut(mv.node);
            node.children.swap(0, 1);
        }
        MoveKind::AssocLeft | MoveKind::ExchangeLeft => {
            // X = Join(Y, C), Y = Join(A, B).
            if n.op != LogicalOp::Join {
                return None;
            }
            let y = n.children[0]?;
            let c = n.children[1]?;
            let yn = p.node(y).clone();
            if yn.op != LogicalOp::Join {
                return None;
            }
            let a = yn.children[0]?;
            let b = yn.children[1]?;
            match mv.kind {
                // (A⋈B)⋈C → A⋈(B⋈C): X = Join(A, Y), Y = Join(B, C).
                MoveKind::AssocLeft => {
                    p.node_mut(mv.node).children = [Some(a), Some(y)];
                    p.node_mut(y).children = [Some(b), Some(c)];
                }
                // (A⋈B)⋈C → B⋈(A⋈C): X = Join(B, Y), Y = Join(A, C).
                _ => {
                    p.node_mut(mv.node).children = [Some(b), Some(y)];
                    p.node_mut(y).children = [Some(a), Some(c)];
                }
            }
        }
        MoveKind::AssocRight | MoveKind::ExchangeRight => {
            // X = Join(A, Y), Y = Join(B, C).
            if n.op != LogicalOp::Join {
                return None;
            }
            let a = n.children[0]?;
            let y = n.children[1]?;
            let yn = p.node(y).clone();
            if yn.op != LogicalOp::Join {
                return None;
            }
            let b = yn.children[0]?;
            let c = yn.children[1]?;
            match mv.kind {
                // A⋈(B⋈C) → (A⋈B)⋈C: X = Join(Y, C), Y = Join(A, B).
                MoveKind::AssocRight => {
                    p.node_mut(mv.node).children = [Some(y), Some(c)];
                    p.node_mut(y).children = [Some(a), Some(b)];
                }
                // A⋈(B⋈C) → (A⋈C)⋈B: X = Join(Y, B), Y = Join(A, C).
                _ => {
                    p.node_mut(mv.node).children = [Some(y), Some(b)];
                    p.node_mut(y).children = [Some(a), Some(c)];
                }
            }
        }
        MoveKind::JoinAnnotation(ann) => {
            if n.op != LogicalOp::Join {
                return None;
            }
            p.node_mut(mv.node).ann = ann;
        }
        MoveKind::SelectAnnotation(ann) => {
            if !matches!(n.op, LogicalOp::Select { .. } | LogicalOp::Aggregate { .. }) {
                return None;
            }
            p.node_mut(mv.node).ann = ann;
        }
        MoveKind::ScanAnnotation(ann) => {
            if !matches!(n.op, LogicalOp::Scan { .. }) {
                return None;
            }
            p.node_mut(mv.node).ann = ann;
        }
    }
    Some(p)
}

/// Apply `mv` and hand the result to the static checker
/// ([`csqp_verify::check_logical`]).
///
/// Moves 1–7 must preserve structural validity and policy conformance —
/// under `debug_assertions`, any other checker finding is a bug in the
/// move itself and panics with the full diagnostic report. What a legal
/// move *can* do is introduce a two-node annotation cycle (§2.2.3: "it is
/// very easy to 'sort out' ill-formed plans during query optimization");
/// those plans are rejected as `None`, exactly like inapplicable moves.
///
/// The returned plan is therefore *checker-verified*: structurally sound,
/// in `policy`'s Table 1 search space, and well-formed.
pub fn apply_move_verified(
    plan: &Plan,
    mv: Move,
    query: &QuerySpec,
    policy: Policy,
) -> Option<Plan> {
    let next = apply_move(plan, mv)?;
    #[cfg(debug_assertions)]
    {
        let report = csqp_verify::check_logical(&next, query, policy);
        if !report.is_clean() && !report.only(csqp_verify::DiagCode::AnnotationCycle) {
            panic!("move {mv:?} broke plan invariants:\n{report}\nplan: {next}");
        }
        if !report.is_clean() {
            return None;
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (query, policy);
        if !csqp_core::is_well_formed(&next) {
            return None;
        }
    }
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{JoinEdge, RelId, Relation};
    use csqp_core::JoinTree;

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn three_way_plan(q: &QuerySpec) -> Plan {
        JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            q,
            Annotation::Consumer,
            Annotation::Client,
        )
    }

    #[test]
    fn assoc_left_reassociates() {
        let q = chain(3);
        let p = three_way_plan(&q);
        // ((R0 ⋈ R1) ⋈ R2): the top join has a join as child 0.
        let top = *p.join_nodes().last().unwrap();
        let p2 = apply_move(
            &p,
            Move {
                node: top,
                kind: MoveKind::AssocLeft,
            },
        )
        .unwrap();
        p2.validate_structure(&q).unwrap();
        assert_eq!(
            p2.render_compact(),
            "(display (join:cons (scan R0:cl) (join:cons (scan R1:cl) (scan R2:cl))))"
        );
    }

    #[test]
    fn exchange_left_swaps_a_and_b() {
        let q = chain(3);
        let p = three_way_plan(&q);
        let top = *p.join_nodes().last().unwrap();
        let p2 = apply_move(
            &p,
            Move {
                node: top,
                kind: MoveKind::ExchangeLeft,
            },
        )
        .unwrap();
        p2.validate_structure(&q).unwrap();
        assert_eq!(
            p2.render_compact(),
            "(display (join:cons (scan R1:cl) (join:cons (scan R0:cl) (scan R2:cl))))"
        );
    }

    #[test]
    fn assoc_right_then_left_round_trips() {
        let q = chain(3);
        let p = three_way_plan(&q);
        let top = *p.join_nodes().last().unwrap();
        let right = apply_move(
            &p,
            Move {
                node: top,
                kind: MoveKind::AssocLeft,
            },
        )
        .unwrap();
        let back = apply_move(
            &right,
            Move {
                node: top,
                kind: MoveKind::AssocRight,
            },
        )
        .unwrap();
        assert_eq!(back.render_compact(), p.render_compact());
    }

    #[test]
    fn exchange_right_moves_b_out() {
        let q = chain(3);
        let t = JoinTree::join(
            JoinTree::leaf(RelId(0)),
            JoinTree::join(JoinTree::leaf(RelId(1)), JoinTree::leaf(RelId(2))),
        );
        let p = t.into_plan(&q, Annotation::Consumer, Annotation::Client);
        let top = *p.join_nodes().last().unwrap();
        let p2 = apply_move(
            &p,
            Move {
                node: top,
                kind: MoveKind::ExchangeRight,
            },
        )
        .unwrap();
        p2.validate_structure(&q).unwrap();
        // A⋈(B⋈C) → (A⋈C)⋈B.
        assert_eq!(
            p2.render_compact(),
            "(display (join:cons (join:cons (scan R0:cl) (scan R2:cl)) (scan R1:cl)))"
        );
    }

    #[test]
    fn commute_swaps_build_side() {
        let q = chain(2);
        let p = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        let j = p.join_nodes()[0];
        let p2 = apply_move(
            &p,
            Move {
                node: j,
                kind: MoveKind::Commute,
            },
        )
        .unwrap();
        assert_eq!(
            p2.render_compact(),
            "(display (join:cons (scan R1:cl) (scan R0:cl)))"
        );
    }

    #[test]
    fn move_lists_respect_policies() {
        let q = chain(3);
        let p = three_way_plan(&q);
        let ds = applicable_moves(
            &p,
            Policy::DataShipping,
            MoveSet::for_policy(Policy::DataShipping),
        );
        // DS: join annotations have a single choice, scans/selects too ->
        // no site moves at all; order moves only.
        assert!(ds.iter().all(|m| m.kind.is_order_move()), "{ds:?}");
        assert!(!ds.is_empty());

        let qsp = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            Annotation::InnerRel,
            Annotation::PrimaryCopy,
        );
        let qs = applicable_moves(
            &qsp,
            Policy::QueryShipping,
            MoveSet::for_policy(Policy::QueryShipping),
        );
        // QS joins may flip between inner/outer but never to consumer;
        // scans never move to the client.
        for m in &qs {
            match m.kind {
                MoveKind::JoinAnnotation(a) => {
                    assert_ne!(a, Annotation::Consumer);
                }
                MoveKind::ScanAnnotation(_) | MoveKind::SelectAnnotation(_) => {
                    panic!("QS must not offer scan/select site moves: {m:?}");
                }
                _ => {}
            }
        }

        let hy = applicable_moves(
            &p,
            Policy::HybridShipping,
            MoveSet::for_policy(Policy::HybridShipping),
        );
        assert!(hy
            .iter()
            .any(|m| matches!(m.kind, MoveKind::ScanAnnotation(_))));
        assert!(hy
            .iter()
            .any(|m| matches!(m.kind, MoveKind::JoinAnnotation(_))));
        assert!(hy.len() > qs.len());
    }

    #[test]
    fn site_selection_only_excludes_order_moves() {
        let q = chain(3);
        let p = three_way_plan(&q);
        let mv = applicable_moves(&p, Policy::HybridShipping, MoveSet::site_selection_only());
        assert!(!mv.is_empty());
        assert!(mv.iter().all(|m| !m.kind.is_order_move()));
    }

    #[test]
    fn all_order_moves_preserve_structure() {
        let q = chain(5);
        let order: Vec<RelId> = (0..5).map(RelId).collect();
        let mut p =
            JoinTree::balanced(&order).into_plan(&q, Annotation::Consumer, Annotation::Client);
        // Exhaustively apply every applicable order move once.
        for _ in 0..50 {
            let moves = applicable_moves(
                &p,
                Policy::DataShipping,
                MoveSet::for_policy(Policy::DataShipping),
            );
            let mv = moves[p.arena_len() % moves.len()];
            let p2 = apply_move(&p, mv).unwrap();
            p2.validate_structure(&q).unwrap();
            p = p2;
        }
    }

    #[test]
    fn stale_move_on_wrong_node_is_none() {
        let q = chain(2);
        let p = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        let scan = p.scan_nodes()[0];
        assert!(apply_move(
            &p,
            Move {
                node: scan,
                kind: MoveKind::Commute
            }
        )
        .is_none());
        let join = p.join_nodes()[0];
        // Join whose children are scans: assoc does not apply.
        assert!(apply_move(
            &p,
            Move {
                node: join,
                kind: MoveKind::AssocLeft
            }
        )
        .is_none());
    }
}
