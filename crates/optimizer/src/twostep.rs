//! Static and 2-step optimization for pre-compiled queries (§5).
//!
//! "We propose a 2-step optimizer that works as follows:
//!  1. At compile time, generate an incomplete query plan including join
//!     orderings but no site annotations …
//!  2. At execution time, carry out site selection and determine where to
//!     execute every operator of the plan (e.g., using simulated
//!     annealing \[MLR90\])."
//!
//! A *static* optimizer, by contrast, fixes both the join order and the
//! annotations at compile time; at runtime the annotated plan is merely
//! re-*bound* (logical → physical), so it follows data migration blindly.
//!
//! The compile-time system state is generally wrong at runtime — that is
//! the whole point of §5's experiments. [`CompileTimeAssumption`] captures
//! the two assumptions used for Figures 10 and 11: `Centralized` ("the
//! optimizer was told at compile time that the database was centralized on
//! a single site", yielding left-deep plans) and `FullyDistributed`
//! ("each relation was stored on a separate server", yielding bushy
//! plans).

use csqp_catalog::{Catalog, QuerySpec, RelId, SiteId, SystemConfig};
use csqp_core::{Plan, Policy};
use csqp_cost::{CostModel, Objective};
use csqp_memo::{CacheBuckets, CompiledProbe, Env as MemoEnv, MemoTable, SelectProbe};
use csqp_simkernel::rng::SimRng;
use csqp_workload::WorkloadSpec;

use crate::search::{OptConfig, Optimizer};

/// The system state assumed when a query is compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileTimeAssumption {
    /// All relations co-located on one server — drives the optimizer
    /// towards left-deep plans (no parallelism to exploit).
    Centralized,
    /// One relation per server — drives the optimizer towards bushy
    /// plans that maximize independent parallelism.
    FullyDistributed,
    /// Compile against an explicit catalog (e.g. yesterday's placement).
    Placement(
        /// Number of servers in the assumed topology.
        u32,
    ),
}

impl CompileTimeAssumption {
    /// Materialize the assumed catalog for `query`.
    pub fn catalog(self, query: &QuerySpec) -> Catalog {
        match self {
            CompileTimeAssumption::Centralized => {
                let mut c = Catalog::new(1);
                for r in &query.relations {
                    c.place(r.id, SiteId::server(1));
                }
                c
            }
            CompileTimeAssumption::FullyDistributed => {
                let n = query.num_relations() as u32;
                let mut c = Catalog::new(n.max(1));
                for (i, r) in query.relations.iter().enumerate() {
                    c.place(r.id, SiteId::server(i as u32 + 1));
                }
                c
            }
            CompileTimeAssumption::Placement(n) => Catalog::new(n),
        }
    }
}

/// Plans produced for one query by the three §5 strategies.
#[derive(Debug, Clone)]
pub struct PrecompiledPlans {
    /// The compile-time plan (join order + annotations) — executed as-is
    /// by the static strategy, merely re-bound at runtime.
    pub static_plan: Plan,
}

/// Produces compile-time plans and performs runtime site selection.
pub struct TwoStepPlanner {
    /// Policy of the search space (the §5 experiments use hybrid).
    pub policy: Policy,
    /// Metric to minimize.
    pub objective: Objective,
    /// Search parameters for both phases.
    pub config: OptConfig,
}

impl TwoStepPlanner {
    /// Compile `query` under `assumption`: a full (order + annotation)
    /// optimization against the assumed catalog. The result serves both
    /// as the static plan and as the join-order skeleton for 2-step.
    pub fn compile(
        &self,
        query: &QuerySpec,
        sys: &SystemConfig,
        assumption: CompileTimeAssumption,
        rng: &mut SimRng,
    ) -> Plan {
        let assumed = assumption.catalog(query);
        for r in &query.relations {
            assert!(
                assumed.try_primary_site(r.id).is_some(),
                "assumption must place every relation (got {:?} for {})",
                assumption,
                r.id
            );
        }
        let model = CostModel::new(sys, &assumed, query, SiteId::CLIENT);
        let opt = Optimizer::new(&model, self.policy, self.objective, self.config.clone());
        opt.optimize(query, rng).plan
    }

    /// Compile against an explicit catalog (e.g. the placement as it was
    /// when the query was compiled — the Fig 9 migration scenario).
    pub fn compile_against(
        &self,
        query: &QuerySpec,
        sys: &SystemConfig,
        assumed: &Catalog,
        rng: &mut SimRng,
    ) -> Plan {
        let model = CostModel::new(sys, assumed, query, SiteId::CLIENT);
        let opt = Optimizer::new(&model, self.policy, self.objective, self.config.clone());
        opt.optimize(query, rng).plan
    }

    /// Runtime half of 2-step: site selection (annotation moves only, by
    /// simulated annealing) against the *true* runtime state, keeping the
    /// compiled join order.
    pub fn site_select(
        &self,
        compiled: &Plan,
        query: &QuerySpec,
        sys: &SystemConfig,
        runtime_catalog: &Catalog,
        rng: &mut SimRng,
    ) -> Plan {
        let model = CostModel::new(sys, runtime_catalog, query, SiteId::CLIENT);
        let opt = Optimizer::new(&model, self.policy, self.objective, self.config.clone());
        let start = clamp_to_topology(compiled, query, runtime_catalog);
        opt.site_selection(start, rng).plan
    }

    /// Cancellable [`TwoStepPlanner::site_select`]: probes `guard` between
    /// annotation moves so the serving layer can abandon dead work.
    #[allow(clippy::too_many_arguments)]
    pub fn site_select_guarded(
        &self,
        compiled: &Plan,
        query: &QuerySpec,
        sys: &SystemConfig,
        runtime_catalog: &Catalog,
        rng: &mut SimRng,
        guard: &csqp_core::CancelToken,
    ) -> Result<Plan, csqp_core::StopReason> {
        let model = CostModel::new(sys, runtime_catalog, query, SiteId::CLIENT);
        let opt = Optimizer::new(&model, self.policy, self.objective, self.config.clone());
        let start = clamp_to_topology(compiled, query, runtime_catalog);
        Ok(opt.site_selection_guarded(start, rng, guard)?.plan)
    }

    /// Memoizing [`TwoStepPlanner::compile`]: probe the memo's compiled
    /// layer, optimize cold on a miss and install. The compile RNG stream
    /// is seeded from the probe fingerprint, so the cold plan for a key is
    /// the same whether or not a memo table is in play.
    pub fn compile_memoized(
        &self,
        spec: &WorkloadSpec,
        query: &QuerySpec,
        sys: &SystemConfig,
        assumption: CompileTimeAssumption,
        env: MemoEnv,
        memo: Option<&MemoTable>,
    ) -> (Plan, MemoOutcome) {
        let probe = CompiledProbe::new(spec, self.policy, self.objective, env);
        if let Some(table) = memo {
            if let Some(plan) = table.probe_compiled(&probe) {
                return (plan, MemoOutcome::Hit);
            }
        }
        let mut rng = SimRng::seed_from_u64(probe.compile_seed());
        let plan = self.compile(query, sys, assumption, &mut rng);
        match memo {
            Some(table) => {
                table.install_compiled(&probe, &plan);
                (plan, MemoOutcome::Miss)
            }
            None => (plan, MemoOutcome::Bypass),
        }
    }

    /// Memoizing [`TwoStepPlanner::site_select_guarded`]: probe the memo's
    /// winner layer for this (policy × objective × cache-bucket) cell,
    /// anneal cold on a miss and install the winner with its proved cost.
    ///
    /// Determinism contract: the annealing stream is seeded from the probe
    /// fingerprint, and `runtime_catalog` must carry exactly the cached
    /// fractions of `buckets` ([`CacheBuckets::planning_fractions`]) — then
    /// a hit is byte-identical to a cold optimization of the same key,
    /// which debug builds enforce on every hit.
    ///
    /// The guard is probed before the memo, so a cancelled or expired
    /// request fails identically whether the table is warm or cold.
    #[allow(clippy::too_many_arguments)]
    pub fn site_select_memoized(
        &self,
        spec: &WorkloadSpec,
        compiled: &Plan,
        query: &QuerySpec,
        sys: &SystemConfig,
        runtime_catalog: &Catalog,
        buckets: &CacheBuckets,
        env: MemoEnv,
        memo: Option<&MemoTable>,
        guard: &csqp_core::CancelToken,
    ) -> Result<(Plan, MemoOutcome), csqp_core::StopReason> {
        if let Some(reason) = guard.stop_reason() {
            return Err(reason);
        }
        let probe = SelectProbe::new(
            spec,
            compiled,
            self.policy,
            self.objective,
            buckets.clone(),
            env,
        );
        if let Some(table) = memo {
            if let Some(hit) = table.probe_selected(&probe) {
                #[cfg(debug_assertions)]
                self.verify_hit(&probe, compiled, query, sys, runtime_catalog, &hit.plan);
                return Ok((hit.plan, MemoOutcome::Hit));
            }
        }
        let mut rng = SimRng::seed_from_u64(probe.select_seed());
        let model = CostModel::new(sys, runtime_catalog, query, SiteId::CLIENT);
        let opt = Optimizer::new(&model, self.policy, self.objective, self.config.clone());
        let start = clamp_to_topology(compiled, query, runtime_catalog);
        let result = opt.site_selection_guarded(start, &mut rng, guard)?;
        match memo {
            Some(table) => {
                table.install_selected(&probe, &result.plan, result.cost);
                Ok((result.plan, MemoOutcome::Miss))
            }
            None => Ok((result.plan, MemoOutcome::Bypass)),
        }
    }

    /// Debug-build verify hook: every memo hit is re-derived cold with the
    /// same fingerprint seed and must match byte for byte. A divergence
    /// means the caller's runtime catalog drifted from the entry's install
    /// state without a generation bump — a bug worth a loud panic.
    #[cfg(debug_assertions)]
    fn verify_hit(
        &self,
        probe: &SelectProbe,
        compiled: &Plan,
        query: &QuerySpec,
        sys: &SystemConfig,
        runtime_catalog: &Catalog,
        hit: &Plan,
    ) {
        let mut rng = SimRng::seed_from_u64(probe.select_seed());
        let cold = self.site_select(compiled, query, sys, runtime_catalog, &mut rng);
        assert_eq!(
            &cold, hit,
            "memo hit diverged from cold optimization for {}",
            probe.fingerprint
        );
    }
}

/// How a memoized optimization call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoOutcome {
    /// Served from the memo table.
    Hit,
    /// Optimized cold; the result was installed.
    Miss,
    /// Optimized cold; no memo table in play.
    Bypass,
}

/// A compiled plan can reference placements that no longer exist; binding
/// is by relation (primary copy), so annotations always resolve — nothing
/// to clamp today. Kept as a named seam (and exercised by tests) so the
/// invariant is explicit.
fn clamp_to_topology(plan: &Plan, query: &QuerySpec, catalog: &Catalog) -> Plan {
    for r in &query.relations {
        assert!(
            catalog.try_primary_site(r.id).is_some(),
            "runtime catalog must place {}",
            r.id
        );
    }
    plan.clone()
}

/// Convenience: compile-time order, runtime sites, in one call.
pub fn two_step_plan(
    planner: &TwoStepPlanner,
    query: &QuerySpec,
    sys: &SystemConfig,
    assumption: CompileTimeAssumption,
    runtime_catalog: &Catalog,
    rng: &mut SimRng,
) -> Plan {
    let compiled = planner.compile(query, sys, assumption, rng);
    planner.site_select(&compiled, query, sys, runtime_catalog, rng)
}

/// Place `rels` on `num_servers` servers in the given explicit assignment
/// (helper for migration experiments like Fig 9).
pub fn explicit_placement(num_servers: u32, assignment: &[(RelId, u32)]) -> Catalog {
    let mut c = Catalog::new(num_servers);
    for &(rel, server) in assignment {
        c.place(rel, SiteId::server(server));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{JoinEdge, Relation};
    use csqp_core::LogicalOp;

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn planner() -> TwoStepPlanner {
        TwoStepPlanner {
            policy: Policy::HybridShipping,
            objective: Objective::ResponseTime,
            config: OptConfig::fast(),
        }
    }

    /// Left-deepness measure: fraction of joins whose outer input is a
    /// base relation (1.0 for a pure left-deep plan).
    fn deepness(plan: &Plan) -> f64 {
        let joins = plan.join_nodes();
        let deep = joins
            .iter()
            .filter(|&&j| {
                let n = plan.node(j);
                !matches!(plan.node(n.children[1].unwrap()).op, LogicalOp::Join)
            })
            .count();
        deep as f64 / joins.len().max(1) as f64
    }

    #[test]
    fn centralized_assumption_yields_deeper_plans_than_distributed() {
        let q = chain(8);
        let sys = SystemConfig::default();
        let p = planner();
        let mut deep_sum = 0.0;
        let mut bushy_sum = 0.0;
        for seed in 0..5 {
            let mut rng = SimRng::seed_from_u64(seed);
            deep_sum +=
                deepness(&p.compile(&q, &sys, CompileTimeAssumption::Centralized, &mut rng));
            let mut rng = SimRng::seed_from_u64(seed);
            bushy_sum +=
                deepness(&p.compile(&q, &sys, CompileTimeAssumption::FullyDistributed, &mut rng));
        }
        assert!(
            deep_sum > bushy_sum,
            "centralized should be deeper: {deep_sum} vs {bushy_sum}"
        );
    }

    #[test]
    fn site_select_preserves_compiled_join_order() {
        let q = chain(5);
        let sys = SystemConfig::default();
        let p = planner();
        let mut rng = SimRng::seed_from_u64(4);
        let compiled = p.compile(&q, &sys, CompileTimeAssumption::Centralized, &mut rng);

        let mut runtime = Catalog::new(3);
        for i in 0..5 {
            runtime.place(RelId(i), SiteId::server(1 + i % 3));
        }
        let selected = p.site_select(&compiled, &q, &sys, &runtime, &mut rng);
        selected.validate_structure(&q).unwrap();

        let order = |pl: &Plan| -> Vec<String> {
            pl.postorder()
                .into_iter()
                .filter_map(|id| match pl.node(id).op {
                    LogicalOp::Scan { rel } => Some(rel.to_string()),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(order(&compiled), order(&selected));
    }

    #[test]
    fn explicit_placement_builds_catalog() {
        let c = explicit_placement(2, &[(RelId(0), 1), (RelId(1), 2), (RelId(2), 1)]);
        assert_eq!(c.primary_site(RelId(0)), SiteId::server(1));
        assert_eq!(c.primary_site(RelId(2)), SiteId::server(1));
        assert_eq!(c.relations_at(SiteId::server(2)), vec![RelId(1)]);
    }

    #[test]
    fn assumption_catalogs_place_every_relation() {
        let q = chain(4);
        for a in [
            CompileTimeAssumption::Centralized,
            CompileTimeAssumption::FullyDistributed,
        ] {
            let c = a.catalog(&q);
            for r in &q.relations {
                assert!(c.try_primary_site(r.id).is_some());
            }
        }
    }
}
