//! Randomized two-phase query optimization (§3.1.1), after Ioannidis and
//! Kang \[IK90\].
//!
//! "The optimizer first chooses a random plan from the desired search
//! space (i.e., data, query, or hybrid-shipping) and then tries to improve
//! the plan by iterative improvement (II) and simulated annealing (SA)."
//!
//! * [`moves`] — the transformation rules: the four join-order moves of
//!   §3.1.1, the three site-annotation moves, and (as a documented
//!   extension, on by default) explicit join commutativity;
//! * [`random`] — policy-restricted random plan generation with
//!   well-formedness repair;
//! * [`search`] — II, SA, and the combined two-phase optimizer, with the
//!   move set enabled/disabled/restricted per policy exactly as §3.1.1
//!   describes;
//! * [`dp`] — the System-R-style [S+79] dynamic-programming join-order
//!   optimizer §5 offers as the alternative compile-time strategy;
//! * [`exhaustive`] — ground-truth enumeration for small queries, used
//!   to validate how close the randomized search gets to optimal;
//! * [`twostep`] — §5's optimization strategies for pre-compiled queries:
//!   *static* (compile-time plan, rebound at runtime) and *2-step*
//!   (compile-time join ordering, runtime site selection by simulated
//!   annealing).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod dp;
pub mod exhaustive;
pub mod moves;
pub mod random;
pub mod search;
pub mod twostep;

pub use dp::dp_join_order;
pub use exhaustive::exhaustive_optimum;
pub use moves::MoveSet;
pub use moves::{applicable_moves, apply_move, Move, MoveKind};
pub use random::{random_neighbor, random_plan};
pub use search::{OptConfig, OptResult, Optimizer};
pub use twostep::{
    explicit_placement, two_step_plan, CompileTimeAssumption, MemoOutcome, TwoStepPlanner,
};
