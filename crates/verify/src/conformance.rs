//! Pass 2: Table 1 policy conformance, as a declarative rule table.
//!
//! [`csqp_core::Policy::allowed`] already encodes Table 1, but the
//! optimizer and the builders *use* that encoding — a transcription error
//! there would silently warp the whole search space, and no check based
//! on the same function could notice. This pass therefore carries its own
//! transcription of the paper's Table 1 ([`TABLE1`]) and validates plans
//! against it; a unit test cross-checks the two encodings cell by cell,
//! so they can only drift together with a test failure.
//!
//! | operator | data shipping | query shipping | hybrid shipping          |
//! |----------|---------------|----------------|--------------------------|
//! | display  | client        | client         | client                   |
//! | join     | consumer      | inner, outer   | consumer, inner, outer   |
//! | select   | consumer      | producer       | consumer, producer       |
//! | scan     | client        | primary copy   | client, primary copy     |
//!
//! Aggregates take the select row (footnote 4: "aggregations are
//! annotated like selections").

use csqp_core::diag::{DiagCode, Diagnostic};
use csqp_core::{Annotation, LogicalOp, Plan, Policy};

/// Operator classes of Table 1. `LogicalOp` carries per-node payload
/// (relation ids, group counts); the rules only care about the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// The root display operator.
    Display,
    /// A binary join.
    Join,
    /// A selection.
    Select,
    /// An aggregation (annotated like a selection, footnote 4).
    Aggregate,
    /// A base-relation scan.
    Scan,
}

impl OpClass {
    /// The class of a concrete plan operator.
    pub fn of(op: LogicalOp) -> OpClass {
        match op {
            LogicalOp::Display => OpClass::Display,
            LogicalOp::Join => OpClass::Join,
            LogicalOp::Select { .. } => OpClass::Select,
            LogicalOp::Aggregate { .. } => OpClass::Aggregate,
            LogicalOp::Scan { .. } => OpClass::Scan,
        }
    }
}

/// One cell of Table 1: the annotations `policy` permits for `op`.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// The execution policy (column).
    pub policy: Policy,
    /// The operator class (row).
    pub op: OpClass,
    /// The permitted annotations for this cell.
    pub allowed: &'static [Annotation],
}

/// The paper's Table 1, cell by cell — an independent transcription, kept
/// deliberately separate from [`Policy::allowed`].
pub const TABLE1: &[Rule] = {
    use Annotation::{Client, Consumer, InnerRel, OuterRel, PrimaryCopy, Producer};
    use OpClass::{Aggregate, Display, Join, Scan, Select};
    use Policy::{DataShipping as DS, HybridShipping as HY, QueryShipping as QS};
    &[
        Rule {
            policy: DS,
            op: Display,
            allowed: &[Client],
        },
        Rule {
            policy: DS,
            op: Join,
            allowed: &[Consumer],
        },
        Rule {
            policy: DS,
            op: Select,
            allowed: &[Consumer],
        },
        Rule {
            policy: DS,
            op: Aggregate,
            allowed: &[Consumer],
        },
        Rule {
            policy: DS,
            op: Scan,
            allowed: &[Client],
        },
        Rule {
            policy: QS,
            op: Display,
            allowed: &[Client],
        },
        Rule {
            policy: QS,
            op: Join,
            allowed: &[InnerRel, OuterRel],
        },
        Rule {
            policy: QS,
            op: Select,
            allowed: &[Producer],
        },
        Rule {
            policy: QS,
            op: Aggregate,
            allowed: &[Producer],
        },
        Rule {
            policy: QS,
            op: Scan,
            allowed: &[PrimaryCopy],
        },
        Rule {
            policy: HY,
            op: Display,
            allowed: &[Client],
        },
        Rule {
            policy: HY,
            op: Join,
            allowed: &[Consumer, InnerRel, OuterRel],
        },
        Rule {
            policy: HY,
            op: Select,
            allowed: &[Consumer, Producer],
        },
        Rule {
            policy: HY,
            op: Aggregate,
            allowed: &[Consumer, Producer],
        },
        Rule {
            policy: HY,
            op: Scan,
            allowed: &[Client, PrimaryCopy],
        },
    ]
};

/// The table cell for (`policy`, `op`): the annotations the rule table
/// permits.
pub fn allowed(policy: Policy, op: OpClass) -> &'static [Annotation] {
    TABLE1
        .iter()
        .find(|r| r.policy == policy && r.op == op)
        .map(|r| r.allowed)
        // Every (policy, class) pair has a row above; an empty cell would
        // make the checker reject every plan, which a test would catch.
        .unwrap_or(&[])
}

/// Validate every node of `plan` against the rule table, collecting *all*
/// violations (unlike [`Policy::validate`], which stops at the first so
/// it can be used as a cheap predicate).
pub fn check_policy(plan: &Plan, policy: Policy) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for id in plan.postorder() {
        let n = plan.node(id);
        let cell = allowed(policy, OpClass::of(n.op));
        if !cell.contains(&n.ann) {
            out.push(Diagnostic::at(
                DiagCode::PolicyViolation,
                plan,
                id,
                format!(
                    "{policy} forbids annotation '{}' on {:?} (Table 1 allows: {})",
                    n.ann,
                    n.op,
                    cell.iter()
                        .map(|a| a.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::RelId;
    use csqp_core::JoinTree;

    /// The rule table and `Policy::allowed` must agree on every cell.
    /// This is the cross-check that lets the two transcriptions only
    /// drift together with a failure.
    #[test]
    fn rule_table_matches_policy_allowed() {
        let ops = [
            LogicalOp::Display,
            LogicalOp::Join,
            LogicalOp::Select { rel: RelId(0) },
            LogicalOp::Aggregate { groups: 10 },
            LogicalOp::Scan { rel: RelId(0) },
        ];
        for policy in Policy::ALL {
            for op in ops {
                assert_eq!(
                    allowed(policy, OpClass::of(op)),
                    policy.allowed(op),
                    "{policy} / {op:?}"
                );
            }
        }
    }

    #[test]
    fn table_has_one_row_per_cell() {
        assert_eq!(TABLE1.len(), 15);
        for policy in Policy::ALL {
            for op in [
                OpClass::Display,
                OpClass::Join,
                OpClass::Select,
                OpClass::Aggregate,
                OpClass::Scan,
            ] {
                let rows = TABLE1
                    .iter()
                    .filter(|r| r.policy == policy && r.op == op)
                    .count();
                assert_eq!(rows, 1, "{policy:?}/{op:?}");
            }
        }
    }

    #[test]
    fn all_violations_are_collected() {
        let q = csqp_workload::chain_query(3, 1e-4);
        let p = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        // Under QS every join and scan of this DS plan violates: 2 joins
        // + 3 scans = 5 findings, each with a path.
        let ds = check_policy(&p, Policy::QueryShipping);
        assert_eq!(ds.len(), 5, "{ds:?}");
        assert!(ds.iter().all(|d| d.code == DiagCode::PolicyViolation));
        assert!(ds.iter().all(|d| d.path.is_some()));
        assert!(check_policy(&p, Policy::DataShipping).is_empty());
        assert!(check_policy(&p, Policy::HybridShipping).is_empty());
    }
}
