//! Collected findings of an analyzer run.

use std::fmt;

use csqp_core::diag::{DiagCode, Diagnostic};

/// Every finding from the passes that ran, in pass order.
///
/// An empty report means the checked artifact satisfied every invariant
/// the passes enforce — the checker's definition of "verified".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The findings, in the order the passes emitted them.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Report {
        Report {
            diagnostics: Vec::new(),
        }
    }

    /// A report holding the given findings.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Report {
        Report { diagnostics }
    }

    /// True when no pass found anything.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Add one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Add all findings of a pass.
    pub fn extend(&mut self, ds: Vec<Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// True when at least one finding carries `code`.
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// True when the report is non-empty and *every* finding carries
    /// `code` — e.g. "the only thing wrong is an annotation cycle", which
    /// the optimizer treats as a filterable plan rather than a bug.
    pub fn only(&self, code: DiagCode) -> bool {
        !self.diagnostics.is_empty() && self.diagnostics.iter().all(|d| d.code == code)
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when there are no findings (alias of [`is_clean`](Report::is_clean)
    /// for the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl IntoIterator for Report {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_renders_clean() {
        let r = Report::new();
        assert!(r.is_clean());
        assert_eq!(r.to_string(), "clean");
    }

    #[test]
    fn only_requires_non_empty_and_uniform_codes() {
        let mut r = Report::new();
        assert!(!r.only(DiagCode::AnnotationCycle));
        r.push(Diagnostic::new(DiagCode::AnnotationCycle, "a"));
        assert!(r.only(DiagCode::AnnotationCycle));
        r.push(Diagnostic::new(DiagCode::PolicyViolation, "b"));
        assert!(!r.only(DiagCode::AnnotationCycle));
        assert!(r.has(DiagCode::PolicyViolation));
        assert_eq!(r.len(), 2);
        assert_eq!(r.to_string().lines().count(), 2);
    }
}
