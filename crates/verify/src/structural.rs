//! Pass 1: structural soundness of the plan arena.
//!
//! `Plan` is an arena of nodes with `Option<NodeId>` child slots; nothing
//! in the representation forces it to be a display-rooted tree. The
//! builders guarantee that shape, but a plan deserialized from JSON or
//! assembled by hand (`Plan::from_parts`) can violate it in ways that
//! send the other crates' recursive walks into panics or unbounded
//! recursion. This pass therefore uses its own iterative, bounds-checked
//! traversal and only hands the plan to the (recursive) core checks once
//! the reachable arena is a proper tree.
//!
//! Checks, in order:
//!
//! 1. root in bounds and a `display` operator;
//! 2. every reachable child reference in bounds ([`DiagCode::DanglingChild`]);
//! 3. no node reachable twice — DAGs and child-cycles both surface as
//!    [`DiagCode::SharedNode`];
//! 4. operator arity: a binary operator has both slots filled, a unary
//!    operator exactly slot 0, a leaf none ([`DiagCode::BadArity`]);
//! 5. annotations drawn from the operator's *legal* set — e.g. `inner
//!    relation` on a scan is illegal under every policy
//!    ([`DiagCode::IllegalAnnotation`]);
//! 6. the two-node annotation-cycle check of §2.2.3
//!    ([`DiagCode::AnnotationCycle`]);
//! 7. with a query: scan coverage, duplicate scans, select placement,
//!    join-input disjointness and aggregate shape, via
//!    [`Plan::validate_structure`].

use csqp_catalog::QuerySpec;
use csqp_core::diag::{DiagCode, Diagnostic};
use csqp_core::{check_well_formed, LogicalOp, Plan};

/// Run the structural pass. `query` enables the query-dependent checks
/// (scan coverage etc.); without it only the arena shape is checked.
///
/// Returns every finding it can reach; once the arena shape itself is
/// broken (dangling or shared references) the deeper checks are skipped
/// because their traversals assume a tree.
pub fn check_structure(plan: &Plan, query: Option<&QuerySpec>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let len = plan.arena_len();

    let root = plan.root();
    if root.index() >= len {
        out.push(Diagnostic::new(
            DiagCode::DanglingChild,
            format!("root {:?} is outside the {len}-node arena", root),
        ));
        return out;
    }

    // Iterative DFS with an explicit stack: never panics, always
    // terminates (visited nodes are not re-entered, so even a child
    // cycle only yields a shared-node finding).
    let mut visited = vec![false; len];
    let mut stack = vec![root];
    let mut arena_broken = false;
    while let Some(id) = stack.pop() {
        if visited[id.index()] {
            out.push(Diagnostic::new(
                DiagCode::SharedNode,
                format!("node {} is reachable through more than one parent", id.0),
            ));
            arena_broken = true;
            continue;
        }
        visited[id.index()] = true;
        let n = plan.node(id);

        let arity = n.op.arity();
        for (slot, child) in n.children.iter().enumerate() {
            match child {
                Some(c) if c.index() >= len => {
                    out.push(Diagnostic::new(
                        DiagCode::DanglingChild,
                        format!(
                            "child slot {slot} of node {} ({:?}) points at {:?}, \
                             outside the {len}-node arena",
                            id.0, n.op, c
                        ),
                    ));
                    arena_broken = true;
                }
                Some(c) if slot >= arity => {
                    out.push(Diagnostic::new(
                        DiagCode::BadArity,
                        format!(
                            "{:?} (node {}) has arity {arity} but child slot {slot} \
                             is occupied by node {}",
                            n.op, id.0, c.0
                        ),
                    ));
                }
                Some(c) => stack.push(*c),
                None if slot < arity => {
                    out.push(Diagnostic::new(
                        DiagCode::BadArity,
                        format!(
                            "{:?} (node {}) has arity {arity} but child slot {slot} is empty",
                            n.op, id.0
                        ),
                    ));
                }
                None => {}
            }
        }

        if !n.op.legal_annotations().contains(&n.ann) {
            out.push(Diagnostic::new(
                DiagCode::IllegalAnnotation,
                format!(
                    "annotation '{}' on {:?} (node {}) is not legal under any policy",
                    n.ann, n.op, id.0
                ),
            ));
        }
    }

    if plan.node(root).op != LogicalOp::Display {
        out.push(Diagnostic::new(
            DiagCode::RootNotDisplay,
            format!(
                "plan root is {:?}, not a display operator",
                plan.node(root).op
            ),
        ));
    }

    if arena_broken {
        // The recursive core checks below assume a sound tree.
        return out;
    }

    if let Err(d) = check_well_formed(plan) {
        out.push(d);
    }
    if let Some(q) = query {
        // validate_structure repeats the arity/root checks (harmless) and
        // adds the query-dependent ones: scan coverage, duplicate scans,
        // select placement, join disjointness, aggregate shape.
        if let Err(d) = plan.validate_structure(q) {
            if !out.contains(&d) {
                out.push(d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{RelId, Relation};
    use csqp_core::plan::PlanNode;
    use csqp_core::{Annotation, JoinTree, NodeId};

    fn chain(n: u32) -> QuerySpec {
        csqp_workload::chain_query(n, 1e-4)
    }

    fn good_plan(q: &QuerySpec) -> Plan {
        let order: Vec<RelId> = q.relations.iter().map(|r| r.id).collect();
        JoinTree::left_deep(&order).into_plan(q, Annotation::Consumer, Annotation::Client)
    }

    #[test]
    fn well_built_plans_are_clean() {
        let q = chain(4);
        assert!(check_structure(&good_plan(&q), Some(&q)).is_empty());
    }

    #[test]
    fn out_of_bounds_child_is_flagged_not_panicked() {
        let q = chain(2);
        let mut p = good_plan(&q);
        let join = p.join_nodes()[0];
        p.node_mut(join).children[1] = Some(NodeId(999));
        let ds = check_structure(&p, Some(&q));
        assert!(
            ds.iter().any(|d| d.code == DiagCode::DanglingChild),
            "{ds:?}"
        );
    }

    #[test]
    fn shared_child_is_flagged() {
        let q = chain(2);
        let mut p = good_plan(&q);
        let join = p.join_nodes()[0];
        let scan0 = p.scan_nodes()[0];
        // Both join inputs point at the same scan.
        p.node_mut(join).children[1] = Some(scan0);
        let ds = check_structure(&p, Some(&q));
        assert!(ds.iter().any(|d| d.code == DiagCode::SharedNode), "{ds:?}");
    }

    #[test]
    fn child_cycle_terminates_with_shared_node() {
        // display -> join, join's child 0 points back at the display.
        let q = chain(2);
        let nodes = vec![
            PlanNode {
                op: LogicalOp::Display,
                ann: Annotation::Client,
                children: [Some(NodeId(1)), None],
            },
            PlanNode {
                op: LogicalOp::Join,
                ann: Annotation::Consumer,
                children: [Some(NodeId(0)), Some(NodeId(2))],
            },
            PlanNode {
                op: LogicalOp::Scan { rel: RelId(0) },
                ann: Annotation::Client,
                children: [None, None],
            },
        ];
        let p = Plan::from_parts(nodes, NodeId(0));
        let ds = check_structure(&p, Some(&q));
        assert!(ds.iter().any(|d| d.code == DiagCode::SharedNode), "{ds:?}");
    }

    #[test]
    fn missing_join_input_is_bad_arity() {
        let q = chain(2);
        let mut p = good_plan(&q);
        let join = p.join_nodes()[0];
        p.node_mut(join).children[1] = None;
        let ds = check_structure(&p, Some(&q));
        assert!(ds.iter().any(|d| d.code == DiagCode::BadArity), "{ds:?}");
    }

    #[test]
    fn scan_with_inner_rel_annotation_is_illegal() {
        let q = chain(2);
        let mut p = good_plan(&q);
        let scan = p.scan_nodes()[0];
        p.node_mut(scan).ann = Annotation::InnerRel;
        let ds = check_structure(&p, Some(&q));
        assert!(
            ds.iter().any(|d| d.code == DiagCode::IllegalAnnotation),
            "{ds:?}"
        );
    }

    #[test]
    fn join_rooted_plan_is_flagged() {
        let q = chain(2);
        let p = good_plan(&q);
        // Re-root at the join: the display becomes an unreachable orphan.
        let join = p.join_nodes()[0];
        let nodes = (0u32..)
            .take(p.arena_len())
            .map(|i| p.node(NodeId(i)).clone())
            .collect();
        let p2 = Plan::from_parts(nodes, join);
        let ds = check_structure(&p2, None);
        assert!(
            ds.iter().any(|d| d.code == DiagCode::RootNotDisplay),
            "{ds:?}"
        );
    }

    #[test]
    fn cycle_and_query_checks_run_after_shape_passes() {
        let q = chain(3);
        let mut p = good_plan(&q);
        let joins = p.join_nodes();
        p.node_mut(joins[1]).ann = Annotation::InnerRel;
        let ds = check_structure(&p, Some(&q));
        assert!(
            ds.iter().any(|d| d.code == DiagCode::AnnotationCycle),
            "{ds:?}"
        );

        // Scan the wrong relation: coverage error from validate_structure.
        let mut p2 = good_plan(&q);
        let scan = p2.scan_nodes()[0];
        if let LogicalOp::Scan { rel } = &mut p2.node_mut(scan).op {
            *rel = RelId(1); // duplicates R1, drops R0
        }
        let ds2 = check_structure(&p2, Some(&q));
        assert!(!ds2.is_empty(), "duplicate/coverage must be flagged");
    }

    #[test]
    fn extra_relation_query_mismatch_is_flagged() {
        let q3 = chain(3);
        let q2 = QuerySpec::new(
            vec![
                Relation::benchmark(RelId(0), "R0"),
                Relation::benchmark(RelId(1), "R1"),
            ],
            vec![],
        );
        let p = good_plan(&q2);
        let ds = check_structure(&p, Some(&q3));
        assert!(!ds.is_empty(), "plan covering 2 of 3 relations must fail");
    }
}
