//! Static analysis for annotated plans and simulator configurations.
//!
//! The crates below `csqp-verify` establish their invariants *by
//! construction*: the plan builders only produce display-rooted trees, the
//! optimizer only draws annotations from the policy's Table 1 row, the
//! cost model only adds non-negative resource charges. This crate checks
//! the same invariants *by inspection*, so a bug in any constructor — or a
//! plan arriving from outside (JSON, a fuzzer, a future remote client) —
//! is caught with a precise [`Diagnostic`] instead of a wrong experiment
//! figure.
//!
//! Four passes:
//!
//! 1. [`structural`] — the plan arena is a display-rooted *tree*: child
//!    references in bounds, no node shared between parents, operator
//!    arity respected, annotations drawn from the operator's legal set,
//!    plus the two-node annotation-cycle check of §2.2.3. Unlike
//!    `Plan::validate_structure` this pass never panics, even on
//!    arbitrarily corrupt arenas.
//! 2. [`conformance`] — Table 1 as a declarative rule table: every
//!    operator's annotation must be in the policy's row. The table is an
//!    *independent transcription* of the paper's Table 1, cross-checked
//!    against [`csqp_core::Policy::allowed`] in tests, so the checker
//!    does not inherit a transcription error from the code it checks.
//! 3. [`invariants`] — cost-model sanity: binding succeeds, resource
//!    vectors are non-negative and finite, estimated response time never
//!    exceeds the sum of all resource phases (the full-overlap model can
//!    hide work, never invent it), costs are monotone when every base
//!    relation grows, and no cardinality estimate exceeds the product of
//!    the base-relation sizes. Also validates [`SystemConfig`] ranges.
//! 4. [`determinism`] — simulator lint: an event-pop trace must be
//!    time-monotone, and replaying a schedule with permuted insertion
//!    order must pop the same observable sequence — otherwise
//!    same-timestamp ties leak insertion order into the statistics.
//!
//! All passes report [`Diagnostic`]s (re-exported from
//! [`csqp_core::diag`]) collected into a [`Report`]; nothing in this
//! crate panics on malformed input.
//!
//! The [`Checker`] facade runs passes 1–3 in order, skipping later passes
//! when an earlier one already failed (costing a cyclic plan is
//! meaningless). The optimizer calls [`check_logical`] after every move
//! under `debug_assertions`; the engine verifies plans the same way
//! before executing them; the `csqp-check` binary drives all four passes
//! over generated workloads, optimizer traces, and negative fixtures.
//!
//! Alongside the plan passes, two model checkers cover the serving
//! stack: [`protocol`] explores one session machine exhaustively, and
//! [`system`] composes N of them with a shared admission-queue /
//! worker-pool model (symmetry-reduced BFS plus a bounded-lasso
//! liveness pass) — `csqp-check --protocol` / `--system`. The [`memo`]
//! pass inspects every live entry of a `csqp-memo` table: fingerprints
//! re-derive from their witnesses, stored plans stay structurally valid
//! and Table-1 conformant, generations are sane, and proved costs are
//! finite — so a memo hit can never serve what a cold optimization
//! could not (`csqp-check --memo`). The [`catalog`] pass replays a
//! recorded catalog drift trace and proves the replication layer's
//! degradation lattice was honored: no query served fresh past the
//! staleness bound, no replica epoch regression ever applied, lag
//! accounting faithful (`csqp-check --catalog`). The [`bounds`] pass
//! analyzes *plans* rather than machines or source text: it derives
//! guaranteed worst-case intermediate sizes from declared unary keys
//! (sound rules: selection never grows, a join on a key of one side is
//! bounded by the other side, product fallback), audits the key
//! declarations against the query's own statistics, and dynamically
//! asserts executed actual ≤ static bound on every operator edge
//! (`csqp-check --bounds`). The serve layer's `--mem-budget` admission
//! gate and the optimizer's `bound_prune` consume the same bounds.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bounds;
pub mod catalog;
pub mod conformance;
pub mod determinism;
pub mod invariants;
pub mod memo;
pub mod protocol;
pub mod report;
pub mod structural;
pub mod system;

pub use csqp_core::diag::{DiagCode, Diagnostic};
pub use report::Report;

use csqp_catalog::{Catalog, QuerySpec, SiteId, SystemConfig};
use csqp_core::{Plan, Policy};

/// The logical-only checks (passes 1–2): structure, well-formedness, and
/// policy conformance. No catalog or configuration needed — this is the
/// check the optimizer affords after *every* move under
/// `debug_assertions`.
///
/// Well-formedness failures (annotation cycles) are included: callers
/// that tolerate cycles (the optimizer filters them rather than treating
/// them as bugs) should test [`Report::only`] with
/// [`DiagCode::AnnotationCycle`].
pub fn check_logical(plan: &Plan, query: &QuerySpec, policy: Policy) -> Report {
    let mut report = Report::new();
    report.extend(structural::check_structure(plan, Some(query)));
    if !report.is_clean() {
        return report;
    }
    report.extend(conformance::check_policy(plan, policy));
    report
}

/// All static passes over a plan, in dependency order.
///
/// ```
/// use csqp_catalog::{Catalog, JoinEdge, QuerySpec, RelId, Relation, SiteId, SystemConfig};
/// use csqp_core::{Annotation, JoinTree, Policy};
/// use csqp_verify::Checker;
///
/// let query = QuerySpec::new(
///     vec![Relation::benchmark(RelId(0), "A"), Relation::benchmark(RelId(1), "B")],
///     vec![JoinEdge { a: RelId(0), b: RelId(1), selectivity: 1e-4 }],
/// );
/// let mut catalog = Catalog::new(1);
/// catalog.place(RelId(0), SiteId::server(1));
/// catalog.place(RelId(1), SiteId::server(1));
/// let config = SystemConfig::default();
/// let plan = JoinTree::left_deep(&[RelId(0), RelId(1)])
///     .into_plan(&query, Annotation::Consumer, Annotation::Client);
///
/// let checker = Checker::new(&query, &catalog, &config, SiteId::CLIENT)
///     .with_policy(Policy::DataShipping);
/// assert!(checker.check(&plan).is_clean());
/// ```
#[derive(Debug, Clone)]
pub struct Checker<'a> {
    query: &'a QuerySpec,
    catalog: &'a Catalog,
    config: &'a SystemConfig,
    query_site: SiteId,
    policy: Option<Policy>,
}

impl<'a> Checker<'a> {
    /// A checker for `query` executed against `catalog` under `config`,
    /// submitted at `query_site`. No policy pass until
    /// [`with_policy`](Checker::with_policy) is called.
    pub fn new(
        query: &'a QuerySpec,
        catalog: &'a Catalog,
        config: &'a SystemConfig,
        query_site: SiteId,
    ) -> Checker<'a> {
        Checker {
            query,
            catalog,
            config,
            query_site,
            policy: None,
        }
    }

    /// Also check Table 1 conformance for `policy`.
    pub fn with_policy(mut self, policy: Policy) -> Checker<'a> {
        self.policy = Some(policy);
        self
    }

    /// Run passes 1–3 on `plan`. Pass 1 failures stop the run (later
    /// passes assume a sound arena); a policy or cycle finding still
    /// allows the remaining node-local checks to report everything they
    /// can.
    pub fn check(&self, plan: &Plan) -> Report {
        let mut report = Report::new();
        report.extend(structural::check_structure(plan, Some(self.query)));
        if !report.is_clean() {
            return report;
        }
        if let Some(policy) = self.policy {
            report.extend(conformance::check_policy(plan, policy));
        }
        report.extend(invariants::check_config(self.config));
        if report.is_clean() {
            report.extend(invariants::check_cost_invariants(
                plan,
                self.config,
                self.catalog,
                self.query,
                self.query_site,
            ));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::RelId;
    use csqp_core::{Annotation, JoinTree};

    fn setup() -> (QuerySpec, Catalog, SystemConfig) {
        let query = csqp_workload::two_way();
        let mut catalog = Catalog::new(1);
        catalog.place(RelId(0), SiteId::server(1));
        catalog.place(RelId(1), SiteId::server(1));
        (query, catalog, SystemConfig::default())
    }

    #[test]
    fn canonical_plans_pass_all_passes() {
        let (query, catalog, config) = setup();
        for (policy, jann, sann) in [
            (
                Policy::DataShipping,
                Annotation::Consumer,
                Annotation::Client,
            ),
            (
                Policy::QueryShipping,
                Annotation::InnerRel,
                Annotation::PrimaryCopy,
            ),
        ] {
            let plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(&query, jann, sann);
            let report = Checker::new(&query, &catalog, &config, SiteId::CLIENT)
                .with_policy(policy)
                .check(&plan);
            assert!(report.is_clean(), "{policy}: {report}");
        }
    }

    #[test]
    fn check_logical_flags_cycles_with_their_code() {
        let (query, ..) = setup();
        let mut plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &query,
            Annotation::Consumer,
            Annotation::PrimaryCopy,
        );
        // A lone join over scans cannot cycle; build a 3-way chain where
        // the top join points down at a consumer join.
        let query = csqp_workload::chain_query(3, 1e-4);
        let mut p3 = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &query,
            Annotation::Consumer,
            Annotation::PrimaryCopy,
        );
        let joins = p3.join_nodes();
        p3.node_mut(joins[1]).ann = Annotation::InnerRel;
        let report = check_logical(&p3, &query, Policy::HybridShipping);
        assert!(report.only(DiagCode::AnnotationCycle), "{report}");
        // And the original 2-way plan stays clean under hybrid.
        plan.node_mut(plan.root()).ann = Annotation::Client;
        let q2 = csqp_workload::two_way();
        assert!(check_logical(&plan, &q2, Policy::HybridShipping).is_clean());
    }
}
