//! Bounded exhaustive model checking for the serving session engine.
//!
//! The event-driven engine in `csqp-serve` drives every connection as an
//! explicit state machine (DESIGN.md §10). Its invariants — one reply per
//! admitted request, the pipeline window never over-admits, teardown
//! always releases the workers — were previously sampled by seeded chaos
//! soaks, which only visit the interleavings a seed happens to hit. This
//! module checks them *exhaustively*: the session transition relation is
//! the pure function [`step`] (no sockets, no clocks, no threads), and
//! [`ModelChecker`] enumerates every event interleaving up to a bounded
//! depth, reporting each violation as a [`Diagnostic`] carrying the
//! minimal event trace that triggers it (breadth-first search reaches
//! every state by a shortest path first).
//!
//! The engine itself routes its per-session decisions through the same
//! [`step`] function (`csqp-serve` interprets the returned [`Action`]s
//! against real sockets and worker queues), so the machine being checked
//! is the machine being served — not a parallel transcription that can
//! drift.
//!
//! # Event alphabet
//!
//! [`Event`] abstracts everything the outside world can do to one
//! session: frame bytes arriving at arbitrary split points
//! ([`Event::BytesPartial`] then a complete-frame event), each decodable
//! client frame, protocol garbage, the admission queue's three submit
//! outcomes, worker completions (clean or truncated by a reply fault),
//! per-query deadline expiry, the write pump draining, client
//! disconnect, and the server's shutdown sweep.
//!
//! # Invariants
//!
//! - **No stuck state** ([`DiagCode::ProtocolStuck`]): every reachable
//!   non-terminal state has at least one enabled event.
//! - **No double reply** ([`DiagCode::ProtocolDoubleReply`]): at most one
//!   RESULT/ERROR completion reply per admitted serial, and never one
//!   after the serial's guard was cancelled.
//! - **Window conservation** ([`DiagCode::ProtocolWindowLeak`]): in-flight
//!   queries never exceed the advertised pipeline depth, counting the
//!   submit in progress.
//! - **No worker leak** ([`DiagCode::ProtocolWorkerLeak`]): when a session
//!   closes, every admitted serial has been answered or cancelled.
//! - **Sweep coherence** ([`DiagCode::ProtocolSweepMissed`]): a session
//!   satisfying its finish condition is closed, not leaked.

use std::collections::BTreeSet;
use std::fmt;

use crate::report::Report;
use csqp_core::diag::{DiagCode, Diagnostic};

/// In-flight queries are tracked as *slots* — bits of a `u16` — and the
/// pipeline window is capped at this many outstanding queries. A slot is
/// reused once its reply is queued, so an arbitrarily long-lived session
/// stays inside the mask: the machine is finite by construction, which
/// is exactly what makes exhaustive checking tractable. The serving
/// engine clamps the advertised `pipeline_depth` to this cap. The
/// constant itself lives in [`csqp_core::limits`] so the engine and the
/// model can never drift apart; it is re-exported here because the model
/// is its defining consumer.
pub use csqp_core::limits::MAX_SERIALS;

/// The reply-frame counter saturates here: the invariants never count
/// queued output above "some", and an unbounded counter would make the
/// reachable state space depth-dependent for no verification gain.
pub const OUT_CAP: u8 = 3;

/// The admission queue's verdict on one submitted job, as the session
/// layer observes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SubmitOutcome {
    /// The job was queued; a worker will post a completion.
    Admitted,
    /// The bounded queue was full; the query is rejected `saturated`.
    QueueFull,
    /// The worker pool is gone (shutdown); the session starts draining.
    PoolGone,
}

/// One thing the outside world does to a session. This is the model
/// checker's branching alphabet; the serving engine maps real I/O onto
/// the same events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// A read delivered bytes that leave the frame reader mid-frame (an
    /// arbitrary split point). Any complete-frame event may follow.
    BytesPartial,
    /// A complete HELLO frame was decoded.
    FrameHello,
    /// A complete QUERY frame was decoded.
    FrameQuery,
    /// The admission queue answered the submit started by
    /// [`Action::TrySubmit`].
    Submit(SubmitOutcome),
    /// A complete STATS-REQ frame was decoded.
    FrameStats,
    /// A complete BYE frame was decoded.
    FrameBye,
    /// A server-to-client frame arrived at the server (a client bug,
    /// answered with a typed error; the session continues).
    FrameUnexpected,
    /// Undecodable bytes: the stream can no longer be trusted.
    FrameGarbage,
    /// A worker posted the outcome for the given serial; the reply
    /// encodes clean.
    Completion(u8),
    /// A worker posted the outcome for the given serial and the reply
    /// fault plan truncated the encoded reply: framing is lost, the
    /// session must poison itself after queueing the partial bytes.
    CompletionTruncated(u8),
    /// The given serial's deadline expired (its guard will stop the
    /// worker at the next probe; the completion still arrives, as an
    /// error).
    DeadlineExpiry(u8),
    /// The write pump flushed every queued reply byte.
    WriteDrained,
    /// The peer vanished: the shard tears the session down.
    Disconnect,
    /// The server's shutdown sweep reached this session.
    ShutdownSweep,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::BytesPartial => write!(f, "bytes(partial)"),
            Event::FrameHello => write!(f, "frame(HELLO)"),
            Event::FrameQuery => write!(f, "frame(QUERY)"),
            Event::Submit(SubmitOutcome::Admitted) => write!(f, "submit(admitted)"),
            Event::Submit(SubmitOutcome::QueueFull) => write!(f, "submit(queue-full)"),
            Event::Submit(SubmitOutcome::PoolGone) => write!(f, "submit(pool-gone)"),
            Event::FrameStats => write!(f, "frame(STATS-REQ)"),
            Event::FrameBye => write!(f, "frame(BYE)"),
            Event::FrameUnexpected => write!(f, "frame(unexpected-s2c)"),
            Event::FrameGarbage => write!(f, "frame(garbage)"),
            Event::Completion(k) => write!(f, "completion(#{k})"),
            Event::CompletionTruncated(k) => write!(f, "completion-truncated(#{k})"),
            Event::DeadlineExpiry(k) => write!(f, "deadline-expiry(#{k})"),
            Event::WriteDrained => write!(f, "write-drained"),
            Event::Disconnect => write!(f, "disconnect"),
            Event::ShutdownSweep => write!(f, "shutdown-sweep"),
        }
    }
}

/// The typed error classes a session can queue (the model does not carry
/// message strings; the engine fills them in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorClass {
    /// Pipeline window or admission queue full.
    Saturated,
    /// Undecodable bytes.
    BadFrame,
    /// A decodable frame the server never accepts.
    BadRequest,
    /// The server is shutting down.
    ShuttingDown,
}

/// What the session machine wants done. The engine interprets these
/// against real sockets, guards, and queues; the checker uses them to
/// track accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Queue a HELLO-ACK reply.
    SendHelloAck,
    /// Queue the completion reply (RESULT or typed ERROR) for a serial.
    SendReply(u8),
    /// Queue a STATS snapshot reply.
    SendStats,
    /// Queue a session-level typed error.
    SendError(ErrorClass),
    /// Hand the query with this serial to the admission queue. The very
    /// next event for this session must be [`Event::Submit`].
    TrySubmit(u8),
    /// The serial was admitted: remember its guard in the in-flight set.
    Admit(u8),
    /// Cancel the serial's guard so its worker releases promptly.
    Cancel(u8),
    /// Remove the session (teardown or sweep) and record the metric.
    Close,
}

/// The pure state of one session — every field the transition relation
/// reads or writes, and nothing else (no sockets, no clocks, no byte
/// buffers). The engine's `Session` owns one of these next to its real
/// I/O state; the model checker explores it directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionModel {
    /// Advertised pipeline depth (admissions beyond it are rejected).
    pub window: u8,
    /// A HELLO has been answered.
    pub handshaken: bool,
    /// The frame reader holds a partial frame.
    pub mid_frame: bool,
    /// No more reads (BYE, poison, or pool-gone drain).
    pub read_closed: bool,
    /// Close once in-flight queries drain and output flushes.
    pub draining: bool,
    /// Framing is broken; drop further completions, close after flush.
    pub poisoned: bool,
    /// The session has been removed (terminal).
    pub closed: bool,
    /// Queued reply frames not yet flushed, saturating at [`OUT_CAP`].
    pub out_pending: u8,
    /// Bitmask of admitted-but-unanswered slots.
    pub inflight: u16,
    /// Subset of `inflight` whose deadline has expired.
    pub expired: u16,
    /// A submit handed to the admission queue, awaiting its outcome.
    pub pending_submit: Option<u8>,
}

fn bit(serial: u8) -> u16 {
    1u16 << (u32::from(serial) % u16::BITS)
}

impl SessionModel {
    /// A freshly accepted session with the given pipeline window
    /// (clamped to `1..=`[`MAX_SERIALS`]).
    pub fn new(window: u8) -> SessionModel {
        SessionModel {
            window: window.clamp(1, MAX_SERIALS),
            handshaken: false,
            mid_frame: false,
            read_closed: false,
            draining: false,
            poisoned: false,
            closed: false,
            out_pending: 0,
            inflight: 0,
            expired: 0,
            pending_submit: None,
        }
    }

    /// Number of admitted-but-unanswered queries.
    pub fn inflight_count(&self) -> u32 {
        self.inflight.count_ones()
    }

    /// True when `slot` holds an admitted-but-unanswered query.
    pub fn is_inflight(&self, slot: u8) -> bool {
        self.inflight & bit(slot) != 0
    }

    /// The session's finish condition, mirroring the engine's sweep: a
    /// poisoned stream with its best-effort error flushed, or a drained
    /// BYE with nothing in flight and nothing buffered.
    pub fn finished(&self) -> bool {
        if self.poisoned {
            self.out_pending == 0
        } else {
            self.draining && self.inflight == 0 && self.out_pending == 0
        }
    }

    fn push_out(&mut self) {
        self.out_pending = (self.out_pending + 1).min(OUT_CAP);
    }

    fn poison(&mut self, actions: &mut Vec<Action>) {
        self.poisoned = true;
        self.read_closed = true;
        self.draining = true;
        for k in 0..MAX_SERIALS {
            if self.inflight & bit(k) != 0 {
                actions.push(Action::Cancel(k));
            }
        }
    }
}

/// The session transition relation: apply one event to one state,
/// returning the successor state and the actions the engine must
/// interpret. Pure — no I/O, no clock, no randomness — so the model
/// checker and the serving engine share it verbatim.
///
/// The sweep is folded in: when the event leaves the session satisfying
/// [`SessionModel::finished`], the successor is `closed` with an
/// [`Action::Close`] appended, exactly as the shard's per-tick sweep
/// would do before any further event could be observed.
pub fn step(state: &SessionModel, event: Event) -> (SessionModel, Vec<Action>) {
    let mut s = *state;
    let mut actions = Vec::new();
    if s.closed {
        return (s, actions);
    }
    match event {
        Event::BytesPartial => {
            if !s.read_closed {
                s.mid_frame = true;
            }
        }
        Event::FrameHello => {
            s.mid_frame = false;
            s.handshaken = true;
            s.push_out();
            actions.push(Action::SendHelloAck);
        }
        Event::FrameQuery => {
            s.mid_frame = false;
            if s.inflight_count() >= u32::from(s.window) {
                s.push_out();
                actions.push(Action::SendError(ErrorClass::Saturated));
            } else {
                // Lowest free slot. One exists: the window check above
                // bounds the occupied slots below MAX_SERIALS.
                let busy = s.inflight | s.pending_submit.map_or(0, bit);
                if let Some(slot) = (0..MAX_SERIALS).find(|&k| busy & bit(k) == 0) {
                    s.pending_submit = Some(slot);
                    actions.push(Action::TrySubmit(slot));
                }
            }
        }
        Event::Submit(outcome) => {
            if let Some(serial) = s.pending_submit.take() {
                match outcome {
                    SubmitOutcome::Admitted => {
                        s.inflight |= bit(serial);
                        s.expired &= !bit(serial);
                        actions.push(Action::Admit(serial));
                    }
                    SubmitOutcome::QueueFull => {
                        s.push_out();
                        actions.push(Action::SendError(ErrorClass::Saturated));
                    }
                    SubmitOutcome::PoolGone => {
                        s.push_out();
                        actions.push(Action::SendError(ErrorClass::ShuttingDown));
                        s.read_closed = true;
                        s.draining = true;
                    }
                }
            }
        }
        Event::FrameStats => {
            s.mid_frame = false;
            s.push_out();
            actions.push(Action::SendStats);
        }
        Event::FrameBye => {
            s.mid_frame = false;
            s.read_closed = true;
            s.draining = true;
        }
        Event::FrameUnexpected => {
            s.mid_frame = false;
            s.push_out();
            actions.push(Action::SendError(ErrorClass::BadRequest));
        }
        Event::FrameGarbage => {
            s.mid_frame = false;
            s.push_out();
            actions.push(Action::SendError(ErrorClass::BadFrame));
            s.poison(&mut actions);
        }
        Event::Completion(k) => {
            // A poisoned session drops completions (the worker already
            // recorded the terminal bucket); so does a stale serial.
            if !s.poisoned && s.inflight & bit(k) != 0 {
                s.inflight &= !bit(k);
                s.expired &= !bit(k);
                s.push_out();
                actions.push(Action::SendReply(k));
            }
        }
        Event::CompletionTruncated(k) => {
            if !s.poisoned && s.inflight & bit(k) != 0 {
                s.inflight &= !bit(k);
                s.expired &= !bit(k);
                s.push_out();
                actions.push(Action::SendReply(k));
                // Framing is gone after a truncated reply.
                s.poison(&mut actions);
            }
        }
        Event::DeadlineExpiry(k) => {
            if s.inflight & bit(k) != 0 {
                s.expired |= bit(k);
            }
        }
        Event::WriteDrained => {
            s.out_pending = 0;
        }
        Event::Disconnect => {
            for k in 0..MAX_SERIALS {
                if s.inflight & bit(k) != 0 {
                    actions.push(Action::Cancel(k));
                }
            }
            s.closed = true;
            actions.push(Action::Close);
        }
        Event::ShutdownSweep => {
            s.push_out();
            actions.push(Action::SendError(ErrorClass::ShuttingDown));
            for k in 0..MAX_SERIALS {
                if s.inflight & bit(k) != 0 {
                    actions.push(Action::Cancel(k));
                }
            }
            s.closed = true;
            actions.push(Action::Close);
        }
    }
    if !s.closed && s.finished() {
        s.closed = true;
        actions.push(Action::Close);
    }
    (s, actions)
}

/// The events enabled in `state` — the checker's branching, and the
/// contract the engine honors (it never feeds a disabled event).
pub fn enabled_events(state: &SessionModel) -> Vec<Event> {
    let mut events = Vec::new();
    if state.closed {
        return events;
    }
    if state.pending_submit.is_some() {
        // The engine resolves a submit before anything else can happen
        // to the session (try_send is synchronous in the frame pump).
        return vec![
            Event::Submit(SubmitOutcome::Admitted),
            Event::Submit(SubmitOutcome::QueueFull),
            Event::Submit(SubmitOutcome::PoolGone),
        ];
    }
    if !state.read_closed {
        events.extend([
            Event::BytesPartial,
            Event::FrameHello,
            Event::FrameQuery,
            Event::FrameStats,
            Event::FrameBye,
            Event::FrameUnexpected,
            Event::FrameGarbage,
        ]);
    }
    for k in 0..MAX_SERIALS {
        if state.inflight & bit(k) != 0 {
            events.push(Event::Completion(k));
            if !state.poisoned {
                events.push(Event::CompletionTruncated(k));
            }
            if state.expired & bit(k) == 0 {
                events.push(Event::DeadlineExpiry(k));
            }
        }
    }
    if state.out_pending > 0 {
        events.push(Event::WriteDrained);
    }
    events.push(Event::Disconnect);
    events.push(Event::ShutdownSweep);
    events
}

/// A transition function the checker explores — [`step`] for the real
/// machine, or a seeded mutant in the checker's own tests.
pub type Stepper = fn(&SessionModel, Event) -> (SessionModel, Vec<Action>);

/// One violation: the diagnostic plus the minimal event trace reaching
/// it (breadth-first search finds each offending state by a shortest
/// event sequence first).
#[derive(Debug, Clone)]
pub struct Violation {
    /// What broke.
    pub diagnostic: Diagnostic,
    /// The events, in order, that drive a fresh session into the
    /// violation.
    pub trace: Vec<Event>,
}

impl Violation {
    /// Render the trace as ` -> `-joined events.
    pub fn render_trace(&self) -> String {
        self.trace
            .iter()
            .map(Event::to_string)
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Statistics of one bounded exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct states reached (after dedup).
    pub states: usize,
    /// Transitions applied.
    pub transitions: usize,
    /// The depth bound the search ran to.
    pub depth: usize,
    /// Depth of the deepest newly discovered state.
    pub deepest_new_state: usize,
}

/// Bookkeeping carried alongside the model state during search: which
/// serials were admitted, answered, and cancelled. Part of the search
/// node so accounting violations dedup correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
struct Accounting {
    admitted: u16,
    replied: u16,
    cancelled: u16,
}

/// Bounded exhaustive explorer over the session event alphabet.
#[derive(Debug, Clone)]
pub struct ModelChecker {
    /// Pipeline window of the explored sessions.
    pub window: u8,
    /// Depth bound (events per trace).
    pub depth: usize,
    /// Stop after this many violations (the first is minimal; later ones
    /// mostly repeat it in longer clothing).
    pub max_violations: usize,
}

impl ModelChecker {
    /// A checker for sessions with the given pipeline window, exploring
    /// to `depth` events.
    pub fn new(window: u8, depth: usize) -> ModelChecker {
        ModelChecker {
            window,
            depth,
            max_violations: 8,
        }
    }

    /// Explore `stepper` exhaustively from a fresh session. Returns the
    /// violations (empty for a correct machine) and the search stats.
    pub fn run(&self, stepper: Stepper) -> (Vec<Violation>, SearchStats) {
        let init = SessionModel::new(self.window);
        let mut stats = SearchStats {
            depth: self.depth,
            ..SearchStats::default()
        };
        let mut violations: Vec<Violation> = Vec::new();
        // BFS frontier: (state, accounting, trace). The visited set keys
        // on (state, accounting) — a BTreeSet for deterministic behavior
        // (membership only, but ordered structures keep the whole
        // checker independent of hasher state on principle).
        let mut visited: BTreeSet<(SessionModel, Accounting)> = BTreeSet::new();
        let mut frontier: Vec<(SessionModel, Accounting, Vec<Event>)> = Vec::new();
        visited.insert((init, Accounting::default()));
        frontier.push((init, Accounting::default(), Vec::new()));
        stats.states = 1;

        for level in 0..self.depth {
            if frontier.is_empty() || violations.len() >= self.max_violations {
                break;
            }
            let mut next: Vec<(SessionModel, Accounting, Vec<Event>)> = Vec::new();
            for (state, acct, trace) in frontier {
                let events = enabled_events(&state);
                if events.is_empty() && !state.closed {
                    violations.push(Violation {
                        diagnostic: Diagnostic::new(
                            DiagCode::ProtocolStuck,
                            format!(
                                "non-terminal state has no enabled event after [{}]",
                                render(&trace)
                            ),
                        ),
                        trace: trace.clone(),
                    });
                    continue;
                }
                for event in events {
                    let (succ, actions) = stepper(&state, event);
                    stats.transitions += 1;
                    let mut trace2 = trace.clone();
                    trace2.push(event);
                    let mut acct2 = acct;
                    self.apply_actions(&succ, &actions, &mut acct2, &trace2, &mut violations);
                    self.check_state(&succ, &acct2, &trace2, &mut violations);
                    if visited.insert((succ, acct2)) {
                        stats.states += 1;
                        stats.deepest_new_state = level + 1;
                        next.push((succ, acct2, trace2));
                    }
                    if violations.len() >= self.max_violations {
                        break;
                    }
                }
            }
            frontier = next;
        }
        (violations, stats)
    }

    /// Explore the real machine ([`step`]). Convenience for callers that
    /// only care about the shipped transition function.
    pub fn check_real(&self) -> (Report, SearchStats) {
        let (violations, stats) = self.run(step);
        let mut report = Report::new();
        for v in violations {
            report.push(v.diagnostic);
        }
        (report, stats)
    }

    fn apply_actions(
        &self,
        succ: &SessionModel,
        actions: &[Action],
        acct: &mut Accounting,
        trace: &[Event],
        violations: &mut Vec<Violation>,
    ) {
        for action in actions {
            match *action {
                Action::Admit(k) => {
                    // Slot reuse starts a fresh generation: the old
                    // reply/cancel record must not vouch for it.
                    acct.replied &= !bit(k);
                    acct.cancelled &= !bit(k);
                    acct.admitted |= bit(k);
                    if succ.inflight_count() > u32::from(self.window) {
                        violations.push(Violation {
                            diagnostic: Diagnostic::new(
                                DiagCode::ProtocolWindowLeak,
                                format!(
                                    "admitting serial #{k} puts {} queries in a window of {} \
                                     after [{}]",
                                    succ.inflight_count(),
                                    self.window,
                                    render(trace)
                                ),
                            ),
                            trace: trace.to_vec(),
                        });
                    }
                }
                Action::SendReply(k) => {
                    if acct.replied & bit(k) != 0 {
                        violations.push(Violation {
                            diagnostic: Diagnostic::new(
                                DiagCode::ProtocolDoubleReply,
                                format!("serial #{k} answered twice after [{}]", render(trace)),
                            ),
                            trace: trace.to_vec(),
                        });
                    }
                    if acct.cancelled & bit(k) != 0 {
                        violations.push(Violation {
                            diagnostic: Diagnostic::new(
                                DiagCode::ProtocolDoubleReply,
                                format!(
                                    "serial #{k} answered after its guard was cancelled \
                                     after [{}]",
                                    render(trace)
                                ),
                            ),
                            trace: trace.to_vec(),
                        });
                    }
                    acct.replied |= bit(k);
                }
                Action::Cancel(k) => {
                    acct.cancelled |= bit(k);
                }
                Action::SendHelloAck
                | Action::SendStats
                | Action::SendError(_)
                | Action::TrySubmit(_)
                | Action::Close => {}
            }
        }
    }

    fn check_state(
        &self,
        state: &SessionModel,
        acct: &Accounting,
        trace: &[Event],
        violations: &mut Vec<Violation>,
    ) {
        if state.inflight_count() > u32::from(self.window) {
            violations.push(Violation {
                diagnostic: Diagnostic::new(
                    DiagCode::ProtocolWindowLeak,
                    format!(
                        "{} queries in flight exceeds the window of {} after [{}]",
                        state.inflight_count(),
                        self.window,
                        render(trace)
                    ),
                ),
                trace: trace.to_vec(),
            });
        }
        // Conservation: every admitted serial is answered, cancelled, or
        // still legitimately in flight.
        let accounted = acct.replied | acct.cancelled | state.inflight;
        if acct.admitted & !accounted != 0 {
            violations.push(Violation {
                diagnostic: Diagnostic::new(
                    DiagCode::ProtocolWindowLeak,
                    format!(
                        "admitted serial mask {:#06x} lost from flight/reply/cancel \
                         accounting after [{}]",
                        acct.admitted & !accounted,
                        render(trace)
                    ),
                ),
                trace: trace.to_vec(),
            });
        }
        if state.closed {
            // Terminal accounting: the worker of every admitted query was
            // released by a reply or a cancellation.
            let released = acct.replied | acct.cancelled;
            if acct.admitted & !released != 0 {
                violations.push(Violation {
                    diagnostic: Diagnostic::new(
                        DiagCode::ProtocolWorkerLeak,
                        format!(
                            "session closed with serial mask {:#06x} neither answered nor \
                             cancelled after [{}]",
                            acct.admitted & !released,
                            render(trace)
                        ),
                    ),
                    trace: trace.to_vec(),
                });
            }
        } else if state.finished() {
            violations.push(Violation {
                diagnostic: Diagnostic::new(
                    DiagCode::ProtocolSweepMissed,
                    format!(
                        "finished session left unswept (open, nothing owed) after [{}]",
                        render(trace)
                    ),
                ),
                trace: trace.to_vec(),
            });
        }
    }
}

fn render(trace: &[Event]) -> String {
    trace
        .iter()
        .map(Event::to_string)
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_machine_is_clean_to_depth_8() {
        for window in [1u8, 2, 4] {
            let checker = ModelChecker::new(window, 8);
            let (report, stats) = checker.check_real();
            assert!(
                report.is_clean(),
                "window {window}: {report}\nstats {stats:?}"
            );
            assert!(stats.states > 100, "exploration actually ran: {stats:?}");
        }
    }

    #[test]
    fn every_state_reaches_terminal() {
        // Disconnect is always enabled, so closure is always reachable;
        // assert the checker agrees by confirming no stuck states and
        // that closed states are reached.
        let checker = ModelChecker::new(2, 6);
        let (violations, stats) = checker.run(step);
        assert!(violations.is_empty());
        assert!(stats.transitions > stats.states);
    }

    /// Mutant: completion forgets to clear the in-flight bit, so a second
    /// completion for the same serial answers twice.
    fn mutant_double_reply(state: &SessionModel, event: Event) -> (SessionModel, Vec<Action>) {
        let (mut s, actions) = step(state, event);
        if let Event::Completion(k) = event {
            if actions.contains(&Action::SendReply(k)) {
                s.inflight |= 1u16 << k; // the forgotten `remove`
                s.closed = false;
            }
        }
        (s, actions)
    }

    /// Mutant: the window check is off by one (`>` instead of `>=`), so
    /// one extra query slips into the pipeline window.
    fn mutant_window_leak(state: &SessionModel, event: Event) -> (SessionModel, Vec<Action>) {
        if event == Event::FrameQuery
            && state.inflight_count() == u32::from(state.window)
            && state.pending_submit.is_none()
            && !state.closed
        {
            // The buggy branch: admit instead of rejecting saturated.
            let mut s = *state;
            if let Some(slot) = (0..MAX_SERIALS).find(|&k| s.inflight & (1u16 << k) == 0) {
                s.pending_submit = Some(slot);
                return (s, vec![Action::TrySubmit(slot)]);
            }
        }
        step(state, event)
    }

    /// Mutant: teardown forgets to cancel in-flight guards — the classic
    /// leaked-worker bug.
    fn mutant_worker_leak(state: &SessionModel, event: Event) -> (SessionModel, Vec<Action>) {
        if event == Event::Disconnect && !state.closed {
            let mut s = *state;
            s.closed = true;
            return (s, vec![Action::Close]);
        }
        step(state, event)
    }

    #[test]
    fn double_reply_mutant_caught_within_depth_6() {
        let checker = ModelChecker::new(2, 6);
        let (violations, _) = checker.run(mutant_double_reply);
        let v = violations
            .iter()
            .find(|v| v.diagnostic.code == DiagCode::ProtocolDoubleReply)
            .expect("double reply found");
        assert!(
            v.trace.len() <= 6,
            "minimal trace expected, got {}",
            v.render_trace()
        );
        // Shortest possible: QUERY -> admit -> completion -> completion.
        assert!(v.trace.len() >= 4, "{}", v.render_trace());
    }

    #[test]
    fn window_leak_mutant_caught_within_depth_6() {
        let checker = ModelChecker::new(1, 6);
        let (violations, _) = checker.run(mutant_window_leak);
        let v = violations
            .iter()
            .find(|v| v.diagnostic.code == DiagCode::ProtocolWindowLeak)
            .expect("window leak found");
        assert!(v.trace.len() <= 6, "{}", v.render_trace());
    }

    #[test]
    fn worker_leak_mutant_caught_within_depth_6() {
        let checker = ModelChecker::new(2, 6);
        let (violations, _) = checker.run(mutant_worker_leak);
        let v = violations
            .iter()
            .find(|v| v.diagnostic.code == DiagCode::ProtocolWorkerLeak)
            .expect("worker leak found");
        assert!(v.trace.len() <= 6, "{}", v.render_trace());
        assert!(v.render_trace().contains("disconnect"));
    }

    #[test]
    fn traces_render_for_humans() {
        let v = Violation {
            diagnostic: Diagnostic::new(DiagCode::ProtocolStuck, "x"),
            trace: vec![Event::FrameHello, Event::FrameQuery],
        };
        assert_eq!(v.render_trace(), "frame(HELLO) -> frame(QUERY)");
    }

    #[test]
    fn truncated_reply_poisons_and_cancels_survivors() {
        let mut s = SessionModel::new(4);
        s.handshaken = true;
        s.inflight = 0b11; // slots 0 and 1 in flight
        let (s2, actions) = step(&s, Event::CompletionTruncated(0));
        assert!(s2.poisoned);
        assert!(actions.contains(&Action::SendReply(0)));
        assert!(actions.contains(&Action::Cancel(1)), "{actions:?}");
        assert!(
            !actions.contains(&Action::Cancel(0)),
            "answered, not cancelled"
        );
    }

    #[test]
    fn bye_then_drain_closes_cleanly() {
        let s = SessionModel::new(2);
        let (s, _) = step(&s, Event::FrameHello);
        let (s, _) = step(&s, Event::WriteDrained);
        let (s, actions) = step(&s, Event::FrameBye);
        assert!(s.closed, "drained BYE sweeps immediately: {s:?}");
        assert!(actions.contains(&Action::Close));
    }
}
