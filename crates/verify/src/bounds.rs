//! Sound worst-case intermediate-size bounds from unary key constraints.
//!
//! Every other number in the stack is an *estimate*: the independence
//! model of `csqp-catalog::cardinality` predicts how big an intermediate
//! result will be, and a wrong prediction costs a suboptimal plan. This
//! pass derives something stronger — a guaranteed upper bound on the
//! tuple and page count of every operator's output, valid for **any**
//! database instance consistent with the declared statistics — using the
//! classic sound rules over declared unary keys:
//!
//! - a scan emits at most the relation's tuple count;
//! - selection, projection, and display never grow their input;
//! - a grouped aggregate emits at most `min(groups, input)` tuples;
//! - a join whose one side is a single base relation with a declared
//!   unary key on the join attribute emits at most the *other* side's
//!   bound (each probe tuple matches at most one key tuple);
//! - otherwise the product bound `|L| · |R|` applies.
//!
//! The rules take the minimum over every applicable case, so bounds are
//! as tight as the declarations allow while staying sound. All
//! arithmetic is saturating or checked: a bound the analyzer cannot
//! represent is reported as [`DiagCode::BoundOverflow`], never silently
//! wrapped (saturating the tuple product at `u64::MAX` is itself sound —
//! every representable actual is `≤ u64::MAX`).
//!
//! A key declaration is *trusted input*, so it is audited before use:
//! [`audit_keys`] re-derives the key property from the query's own
//! statistics (an edge incident to a keyed relation `r` must admit at
//! most one match per probe tuple, i.e. `selectivity ≤ 1/|r|`) and
//! reports [`DiagCode::BoundKeyUnsound`] for any declaration the
//! statistics do not justify. [`analyze`] ignores unaudited keys — a
//! hostile over-declaration degrades bounds to the product rule instead
//! of poisoning them.
//!
//! Two consumers sit on top:
//!
//! - **admission control** ([`client_footprint_pages`]): the worst-case
//!   client-memory footprint of a bound plan, which
//!   `csqp-serve --mem-budget` compares against its budget before
//!   executing anything;
//! - **dynamic soundness checking** ([`check_plan`]): executes the
//!   engine's per-operator output convention and asserts actual ≤ bound
//!   on every operator edge, reporting [`DiagCode::BoundViolated`]
//!   otherwise. `csqp-check --bounds` sweeps this across seeded plans
//!   for every policy × objective.

use csqp_catalog::{try_pages_for, QuerySpec, RelSet};
use csqp_core::bind::BoundPlan;
use csqp_core::plan::{LogicalOp, NodeId, Plan};
use csqp_core::{DiagCode, Diagnostic};

/// The guaranteed worst-case output size of one plan node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeBound {
    /// At most this many tuples, for any instance consistent with the
    /// declared statistics.
    pub tuples: u64,
    /// At most this many pages (tuples packed without spanning pages).
    pub pages: u64,
}

/// Worst-case bounds for every node reachable from a plan's root.
#[derive(Debug, Clone)]
pub struct PlanBounds {
    /// Indexed by `NodeId`; `None` for arena entries unreachable from
    /// the root (bounds are only defined along the executed tree).
    bounds: Vec<Option<NodeBound>>,
    root: NodeId,
}

impl PlanBounds {
    /// The bound for `id`, when `id` is reachable from the root.
    pub fn node(&self, id: NodeId) -> Option<NodeBound> {
        self.bounds.get(id.index()).copied().flatten()
    }

    /// The bound on the final (root) result.
    // Invariant: `analyze` always computes the root's bound before
    // constructing the report.
    #[allow(clippy::expect_used)]
    pub fn root(&self) -> NodeBound {
        self.bounds[self.root.index()].expect("root bound is always computed")
    }
}

/// Audit every declared unary key against the query's own statistics.
///
/// A unary key on `r`'s join attribute means no two `r`-tuples share a
/// value, so any edge `(x, r)` yields at most `|x|` result tuples —
/// which pins the edge's selectivity at `≤ 1/|r|`. A declaration whose
/// incident edges exceed that (or that has no incident edge at all, so
/// nothing ever witnesses it) is reported as `bound-key-unsound`: every
/// bound derived from it would be wrong.
pub fn audit_keys(query: &QuerySpec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for r in &query.relations {
        if !r.key {
            continue;
        }
        let incident: Vec<_> = query
            .edges
            .iter()
            .filter(|e| e.a == r.id || e.b == r.id)
            .collect();
        if incident.is_empty() {
            diags.push(Diagnostic::new(
                DiagCode::BoundKeyUnsound,
                format!(
                    "{} declares a key but joins nothing; nothing justifies it",
                    r.id
                ),
            ));
            continue;
        }
        if r.tuples == 0 {
            // An empty keyed relation bounds every join at 0; any
            // selectivity is consistent with it.
            continue;
        }
        let limit = 1.0 / r.tuples as f64;
        for e in incident {
            if !(e.selectivity > 0.0 && e.selectivity <= limit) {
                diags.push(Diagnostic::new(
                    DiagCode::BoundKeyUnsound,
                    format!(
                        "{} declares a key but edge {}–{} has selectivity {:e} > 1/{} \
                         (a probe tuple could match more than one key tuple)",
                        r.id, e.a, e.b, e.selectivity, r.tuples
                    ),
                ));
            }
        }
    }
    diags
}

/// True when the declared key on `rel` survives [`audit_keys`] — the
/// only keys [`analyze`] will derive bounds from.
fn key_usable(query: &QuerySpec, rel: csqp_catalog::RelId) -> bool {
    let r = &query.relations[rel.index()];
    if !r.key {
        return false;
    }
    let mut any = false;
    for e in query.edges.iter().filter(|e| e.a == rel || e.b == rel) {
        if r.tuples > 0 && !(e.selectivity > 0.0 && e.selectivity <= 1.0 / r.tuples as f64) {
            return false;
        }
        any = true;
    }
    any
}

/// Derive worst-case bounds for every node of `plan` from `query`'s
/// declared statistics and audited keys.
///
/// Errors with a `bound-overflow` diagnostic when the page conversion
/// meets statistics it cannot stand behind (zero-width tuples, a tuple
/// wider than a page, a non-uniform schema); tuple products saturate.
pub fn analyze(plan: &Plan, query: &QuerySpec, page_size: u32) -> Result<PlanBounds, Diagnostic> {
    let Some(width) = query.uniform_tuple_bytes() else {
        return Err(Diagnostic::new(
            DiagCode::BoundOverflow,
            "bounds need the uniform-width schema; this query mixes tuple widths",
        ));
    };
    let pages_of = |tuples: u64, plan: &Plan, id: NodeId| -> Result<u64, Diagnostic> {
        try_pages_for(tuples, width, page_size).ok_or_else(|| {
            Diagnostic::at(
                DiagCode::BoundOverflow,
                plan,
                id,
                format!(
                    "page bound undefined for tuple_bytes={width} page_size={page_size} \
                     (hostile statistics)"
                ),
            )
        })
    };
    let mut bounds: Vec<Option<NodeBound>> = vec![None; plan.arena_len()];
    // Invariant panics below: postorder yields children before parents
    // and `validate_structure` guarantees occupied arity slots, so every
    // child bound is present when its parent is visited.
    #[allow(clippy::expect_used)]
    for id in plan.postorder() {
        let node = plan.node(id);
        let child = |slot: usize| -> NodeBound {
            let c = node.children[slot].expect("validated arity");
            bounds[c.index()].expect("postorder computes children first")
        };
        let tuples = match node.op {
            LogicalOp::Scan { rel } => query.relations[rel.index()].tuples,
            // Selection never grows; the worst case keeps every tuple.
            LogicalOp::Select { .. } | LogicalOp::Display => child(0).tuples,
            LogicalOp::Aggregate { groups } => groups.min(child(0).tuples),
            LogicalOp::Join => {
                let (l, r) = (child(0), child(1));
                let (lset, rset) = {
                    let lc = node.children[0].expect("validated arity");
                    let rc = node.children[1].expect("validated arity");
                    (plan.rel_set(lc), plan.rel_set(rc))
                };
                let mut best = l.tuples.saturating_mul(r.tuples);
                // Key rule: a side that is a single audited-key base
                // relation joined on its key caps the result at the
                // other side's bound. Selection below the scan keeps
                // uniqueness, so a {Select, Scan}-only side qualifies —
                // exactly the sides whose relation set is a singleton.
                for e in &query.edges {
                    let crossing = (lset.contains(e.a) && rset.contains(e.b))
                        || (lset.contains(e.b) && rset.contains(e.a));
                    if !crossing {
                        continue;
                    }
                    for (end, side_set, other) in [
                        (e.a, lset, r),
                        (e.a, rset, l),
                        (e.b, lset, r),
                        (e.b, rset, l),
                    ] {
                        if side_set.contains(end)
                            && side_set == RelSet::single(end)
                            && key_usable(query, end)
                        {
                            best = best.min(other.tuples);
                        }
                    }
                }
                best
            }
        };
        let pages = pages_of(tuples, plan, id)?;
        bounds[id.index()] = Some(NodeBound { tuples, pages });
    }
    Ok(PlanBounds {
        bounds,
        root: plan.root(),
    })
}

/// The engine's per-operator output convention (`ExecutionBuilder::
/// output_stats`), reproduced here so the dynamic soundness check
/// compares the bound against exactly what execution materializes:
/// scans emit their base relation, aggregates clamp to their group
/// count, and every other operator materializes the rounded estimate
/// for its relation set. `None` when the page conversion is undefined
/// for the declared statistics.
pub fn actual_stats(
    query: &QuerySpec,
    page_size: u32,
    plan: &Plan,
    id: NodeId,
) -> Option<(u64, u64)> {
    let width = query.uniform_tuple_bytes()?;
    let est = csqp_catalog::Estimator::new(
        query,
        &csqp_catalog::SystemConfig {
            page_size,
            ..csqp_catalog::SystemConfig::default()
        },
    );
    let node = plan.node(id);
    match node.op {
        LogicalOp::Scan { rel } => {
            let r = &query.relations[rel.index()];
            let pages = try_pages_for(r.tuples, r.tuple_bytes, page_size)?;
            Some((r.tuples, pages))
        }
        LogicalOp::Aggregate { groups } => {
            let child = node.children[0]?;
            let (in_tuples, _) = actual_stats(query, page_size, plan, child)?;
            let t = groups.min(in_tuples);
            Some((t, try_pages_for(t, width, page_size)?))
        }
        _ => {
            let rels = plan.rel_set(id);
            let t = est.tuples_int(rels);
            Some((t, try_pages_for(t, width, page_size)?))
        }
    }
}

/// Dynamic soundness check for one plan: audit the keys, derive the
/// bounds, and assert the engine's materialized output stays within the
/// bound on every operator edge. Clean plans return no diagnostics.
pub fn check_plan(query: &QuerySpec, page_size: u32, plan: &Plan) -> Vec<Diagnostic> {
    let mut diags = audit_keys(query);
    let bounds = match analyze(plan, query, page_size) {
        Ok(b) => b,
        Err(d) => {
            diags.push(d);
            return diags;
        }
    };
    for id in plan.postorder() {
        let Some(bound) = bounds.node(id) else {
            continue;
        };
        let Some((tuples, pages)) = actual_stats(query, page_size, plan, id) else {
            diags.push(Diagnostic::at(
                DiagCode::BoundOverflow,
                plan,
                id,
                "executed output stats undefined for the declared statistics",
            ));
            continue;
        };
        if tuples > bound.tuples || pages > bound.pages {
            diags.push(Diagnostic::at(
                DiagCode::BoundViolated,
                plan,
                id,
                format!(
                    "executed {tuples} tuples / {pages} pages exceeds the guaranteed \
                     bound of {} tuples / {} pages",
                    bound.tuples, bound.pages
                ),
            ));
        }
    }
    diags
}

/// Worst-case *client-memory* footprint of a bound plan, in pages: the
/// pages of both join inputs for every join executed at the client,
/// plus the final result the client must hold. This is the quantity
/// `--mem-budget` compares: QS plans join at the servers, so their
/// footprint is the result bound alone — which is why a budget-starved
/// server can still serve QS while degrading HY/DS.
pub fn client_footprint_pages(bound: &BoundPlan, bounds: &PlanBounds) -> u64 {
    let mut total: u64 = bounds.root().pages;
    // Invariant panic: join arity is validated before binding.
    #[allow(clippy::expect_used)]
    for id in bound.plan.join_nodes() {
        if !bound.site(id).is_client() {
            continue;
        }
        let node = bound.plan.node(id);
        for slot in 0..2 {
            let c = node.children[slot].expect("validated arity");
            if let Some(b) = bounds.node(c) {
                total = total.saturating_add(b.pages);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{RelId, Relation};
    use csqp_core::annotation::Annotation;
    use csqp_core::bind::{bind, BindContext};
    use csqp_core::builder::JoinTree;
    use csqp_workload::{chain_query, single_server_placement, star_query, MODERATE_SEL};

    const PAGE: u32 = 4096;

    fn left_deep(query: &QuerySpec) -> Plan {
        let order: Vec<RelId> = query.relations.iter().map(|r| r.id).collect();
        JoinTree::left_deep(&order).into_plan(query, Annotation::Consumer, Annotation::Client)
    }

    #[test]
    fn keyed_chain_is_bounded_by_one_relation() {
        let q = chain_query(4, MODERATE_SEL);
        let plan = left_deep(&q);
        let b = analyze(&plan, &q, PAGE).expect("bounds");
        // Every join of the keyed chain stays ≤ 10,000 tuples: each step
        // joins the running result against a single keyed base relation.
        assert_eq!(b.root().tuples, 10_000);
        assert_eq!(b.root().pages, 250);
        for id in plan.join_nodes() {
            let jb = b.node(id).expect("reachable");
            assert_eq!(jb.tuples, 10_000, "key rule caps every join");
        }
    }

    #[test]
    fn unkeyed_chain_falls_back_to_the_product() {
        let q = chain_query(3, 1e-3); // 1e-3 > 1/10,000: no keys declared
        assert!(q.relations.iter().all(|r| !r.key));
        let plan = left_deep(&q);
        let b = analyze(&plan, &q, PAGE).expect("bounds");
        let joins = plan.join_nodes();
        assert_eq!(b.node(joins[0]).expect("join").tuples, 100_000_000);
        assert_eq!(b.root().tuples, 1_000_000_000_000);
    }

    #[test]
    fn hostile_key_declaration_is_audited_and_ignored() {
        let mut q = chain_query(3, 1e-3);
        // A hostile peer declares keys the selectivities cannot justify.
        for r in &mut q.relations {
            r.key = true;
        }
        let diags = audit_keys(&q);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == DiagCode::BoundKeyUnsound));
        // The analyzer must not believe the declaration: product bound.
        let plan = left_deep(&q);
        let b = analyze(&plan, &q, PAGE).expect("bounds");
        assert_eq!(b.root().tuples, 1_000_000_000_000);
    }

    #[test]
    fn key_without_edges_is_unjustified() {
        let q = QuerySpec::new(vec![Relation::benchmark(RelId(0), "A").with_key()], vec![]);
        let diags = audit_keys(&q);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::BoundKeyUnsound);
    }

    #[test]
    fn selection_and_aggregate_never_grow() {
        let q = chain_query(2, MODERATE_SEL)
            .with_selection(RelId(0), 0.1)
            .with_aggregate(40);
        let plan = left_deep(&q);
        let b = analyze(&plan, &q, PAGE).expect("bounds");
        // The bound ignores the selection (worst case keeps everything)
        // but the aggregate caps the root at its group count.
        assert_eq!(b.root().tuples, 40);
        assert_eq!(b.root().pages, 1);
    }

    #[test]
    fn overflow_reports_a_typed_diag_not_a_panic() {
        let mut q = chain_query(2, MODERATE_SEL);
        for r in &mut q.relations {
            r.tuple_bytes = 8192; // wider than the page
        }
        let plan = left_deep(&q);
        let err = analyze(&plan, &q, PAGE).expect_err("hostile stats");
        assert_eq!(err.code, DiagCode::BoundOverflow);
    }

    #[test]
    fn executed_actuals_stay_within_bounds_for_benchmark_shapes() {
        for q in [
            chain_query(2, MODERATE_SEL),
            chain_query(5, MODERATE_SEL),
            chain_query(4, csqp_workload::HISEL_SEL),
            star_query(4, MODERATE_SEL),
        ] {
            let plan = left_deep(&q);
            let diags = check_plan(&q, PAGE, &plan);
            assert!(diags.is_empty(), "{:?}", diags);
        }
    }

    #[test]
    fn client_footprint_counts_client_joins_and_the_result() {
        let q = chain_query(3, MODERATE_SEL);
        let plan = left_deep(&q);
        let catalog = single_server_placement(&q);
        let bound = bind(
            &plan,
            BindContext {
                catalog: &catalog,
                query_site: csqp_catalog::SiteId::CLIENT,
            },
        )
        .expect("binds");
        let bounds = analyze(&plan, &q, PAGE).expect("bounds");
        let footprint = client_footprint_pages(&bound, &bounds);
        // Consumer-annotated joins with the display at the client run at
        // the client: both joins (2 × 250 input pages each) + the result.
        let client_joins = bound
            .plan
            .join_nodes()
            .iter()
            .filter(|&&id| bound.site(id).is_client())
            .count() as u64;
        assert_eq!(footprint, 250 + client_joins * 500);
        assert!(footprint >= bounds.root().pages);
    }
}
