//! Drift-conformance pass over a recorded catalog drift trace.
//!
//! The serving stack replicates the catalog per shard site behind a
//! coordinator/replica epoch model (DESIGN.md §14): mutations publish
//! monotone epochs, replicas refresh through a fault-injectable
//! propagation step, and every admitted query is served *fresh*,
//! *degraded* to QS, or *rejected* according to how far its shard's
//! replica trailed the coordinator. While catalog faults are armed the
//! server records a [`DriftEvent`] trace; this pass replays that trace
//! and proves the degradation lattice was honored:
//!
//! * **no stale serve** — a query recorded as served `Fresh` while its
//!   replica trailed the coordinator by more than the staleness bound
//!   means the bound was ignored — [`DiagCode::CatalogStaleServed`].
//! * **epoch monotonicity** — coordinator epochs only ever rise, and no
//!   replica may *apply* a refresh that moves its epoch backwards (a
//!   reordered delivery must be refused, not applied) —
//!   [`DiagCode::CatalogEpochRegress`].
//! * **lag accounting** — the lag recorded at each serve decision must
//!   re-derive from the reconstructed coordinator and replica epochs;
//!   a mismatch means the serve decision priced against state it did
//!   not actually hold — [`DiagCode::CatalogLagBound`].
//!
//! The trace is audited as a *prefix* of the drift history (the server
//! caps the trace by dropping whole queries from the tail), so every
//! event the pass sees carries enough context to be checked without the
//! events that were dropped after it.

use csqp_catalog::{DriftAction, DriftEvent};
use csqp_core::diag::{DiagCode, Diagnostic};
use std::collections::BTreeMap;

use crate::report::Report;

fn diag(code: DiagCode, index: usize, detail: String) -> Diagnostic {
    let mut d = Diagnostic::new(code, detail);
    d.path = Some(format!("drift/event{index}"));
    d
}

/// Replay a recorded drift trace and prove every serve decision honored
/// the staleness bound `max_epoch_lag`. Returns a clean report when the
/// trace conforms; each violation carries the offending event index in
/// its path.
pub fn check_drift(trace: &[DriftEvent], max_epoch_lag: u64) -> Report {
    let mut report = Report::new();
    let mut coordinator: u64 = 0;
    let mut replicas: BTreeMap<u32, u64> = BTreeMap::new();

    for (i, event) in trace.iter().enumerate() {
        match *event {
            DriftEvent::Publish { epoch } => {
                if epoch <= coordinator {
                    report.push(diag(
                        DiagCode::CatalogEpochRegress,
                        i,
                        format!(
                            "coordinator published epoch {epoch} at or behind \
                             its current epoch {coordinator}"
                        ),
                    ));
                }
                coordinator = coordinator.max(epoch);
            }
            DriftEvent::Refresh {
                site,
                from,
                to,
                applied,
            } => {
                let have = replicas.get(&site).copied().unwrap_or(0);
                if from != have {
                    report.push(diag(
                        DiagCode::CatalogLagBound,
                        i,
                        format!(
                            "site {site} refresh claims to start from epoch {from}, \
                             but the reconstructed replica holds {have}"
                        ),
                    ));
                }
                if applied {
                    if to < have {
                        report.push(diag(
                            DiagCode::CatalogEpochRegress,
                            i,
                            format!(
                                "site {site} applied a refresh that regressed its \
                                 epoch {have} -> {to}; regressions must be refused"
                            ),
                        ));
                    }
                    if to > coordinator {
                        report.push(diag(
                            DiagCode::CatalogEpochRegress,
                            i,
                            format!(
                                "site {site} refreshed to epoch {to}, ahead of the \
                                 coordinator's {coordinator}"
                            ),
                        ));
                    }
                    replicas.insert(site, to.max(have));
                }
            }
            DriftEvent::Poison { .. } => {
                // Poison taints pricing inputs, not epochs; the serve
                // decision it forces is checked at its Serve event.
            }
            DriftEvent::Serve {
                site,
                priced_epoch,
                coordinator_epoch,
                lag,
                action,
            } => {
                let have = replicas.get(&site).copied().unwrap_or(0);
                if priced_epoch != have || coordinator_epoch != coordinator {
                    report.push(diag(
                        DiagCode::CatalogLagBound,
                        i,
                        format!(
                            "site {site} serve decision priced at epoch \
                             {priced_epoch}/{coordinator_epoch}, but reconstruction \
                             holds {have}/{coordinator}"
                        ),
                    ));
                }
                let derived = coordinator_epoch.saturating_sub(priced_epoch);
                if lag != derived {
                    report.push(diag(
                        DiagCode::CatalogLagBound,
                        i,
                        format!(
                            "site {site} recorded lag {lag}, but its own epochs \
                             derive lag {derived}"
                        ),
                    ));
                }
                if action == DriftAction::Fresh && lag > max_epoch_lag {
                    report.push(diag(
                        DiagCode::CatalogStaleServed,
                        i,
                        format!(
                            "site {site} served fresh at lag {lag}, past the \
                             staleness bound {max_epoch_lag}"
                        ),
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A conforming little history: two publishes, a refresh, a fresh
    /// serve within bound, then a withheld refresh forcing a degraded
    /// serve past the bound.
    fn honest_trace() -> Vec<DriftEvent> {
        vec![
            DriftEvent::Publish { epoch: 1 },
            DriftEvent::Refresh {
                site: 0,
                from: 0,
                to: 1,
                applied: true,
            },
            DriftEvent::Serve {
                site: 0,
                priced_epoch: 1,
                coordinator_epoch: 1,
                lag: 0,
                action: DriftAction::Fresh,
            },
            DriftEvent::Publish { epoch: 2 },
            DriftEvent::Publish { epoch: 3 },
            DriftEvent::Serve {
                site: 0,
                priced_epoch: 1,
                coordinator_epoch: 3,
                lag: 2,
                action: DriftAction::Degraded,
            },
        ]
    }

    #[test]
    fn honest_trace_is_clean() {
        let report = check_drift(&honest_trace(), 1);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn over_lag_fresh_serve_is_stale_served() {
        let mut trace = honest_trace();
        // Mutate the degraded serve into a fresh one: lag 2 > bound 1.
        if let Some(DriftEvent::Serve { action, .. }) = trace.last_mut() {
            *action = DriftAction::Fresh;
        }
        let report = check_drift(&trace, 1);
        assert!(report.has(DiagCode::CatalogStaleServed));
    }

    #[test]
    fn applied_regression_is_epoch_regress() {
        let mut trace = honest_trace();
        trace.push(DriftEvent::Refresh {
            site: 0,
            from: 1,
            to: 0,
            applied: true,
        });
        let report = check_drift(&trace, 1);
        assert!(report.has(DiagCode::CatalogEpochRegress));

        // The same delivery *refused* is conforming behavior.
        let mut trace = honest_trace();
        trace.push(DriftEvent::Refresh {
            site: 0,
            from: 1,
            to: 0,
            applied: false,
        });
        assert!(check_drift(&trace, 1).is_clean());
    }

    #[test]
    fn coordinator_regress_is_epoch_regress() {
        let mut trace = honest_trace();
        trace.push(DriftEvent::Publish { epoch: 2 });
        let report = check_drift(&trace, 1);
        assert!(report.has(DiagCode::CatalogEpochRegress));
    }

    #[test]
    fn lag_misaccounting_is_lag_bound() {
        let mut trace = honest_trace();
        // Claim a smaller lag than the epochs derive.
        if let Some(DriftEvent::Serve { lag, .. }) = trace.last_mut() {
            *lag = 0;
        }
        let report = check_drift(&trace, 1);
        assert!(report.has(DiagCode::CatalogLagBound));

        // Claim epochs the reconstruction does not hold.
        let mut trace = honest_trace();
        if let Some(DriftEvent::Serve { priced_epoch, .. }) = trace.last_mut() {
            *priced_epoch = 3;
        }
        let report = check_drift(&trace, 1);
        assert!(report.has(DiagCode::CatalogLagBound));
    }

    #[test]
    fn replica_ahead_of_coordinator_is_flagged() {
        let trace = vec![
            DriftEvent::Publish { epoch: 1 },
            DriftEvent::Refresh {
                site: 2,
                from: 0,
                to: 5,
                applied: true,
            },
        ];
        let report = check_drift(&trace, 1);
        assert!(report.has(DiagCode::CatalogEpochRegress));
    }
}
