//! Memo-consistency pass: inspect every live entry of a
//! [`csqp_memo::MemoTable`] and prove that nothing it could ever serve
//! is wrong.
//!
//! The memo's own probes enforce witness equality at lookup time, so a
//! fingerprint collision can never *serve* the wrong plan. This pass
//! re-establishes the same guarantees by inspection over the exported
//! entries, the way the other analyzer passes re-check what the
//! constructors establish by construction:
//!
//! * **fingerprint integrity** — every stored fingerprint re-derives
//!   from its witness bytes, and a compiled-layer witness is exactly the
//!   canonical preimage of its structured key (spec, policy, objective,
//!   environment). A mismatch means the collision guard is broken —
//!   [`DiagCode::MemoFingerprint`].
//! * **generation sanity** — no entry carries a generation the table has
//!   never issued ([`DiagCode::MemoGeneration`]). Entries *behind* the
//!   current generation are legal: invalidation is lazy, and the probe
//!   path drops them before they can be served.
//! * **plan validity** — every stored plan passes the structural pass
//!   against its group's query, and winner-layer plans additionally pass
//!   Table-1 conformance for their policy: a memo hit is always as
//!   conformant as the cold optimization it replaces.
//! * **cost sanity** — winner entries must carry the proved cost, finite
//!   and non-negative ([`DiagCode::MemoCost`]).

use csqp_core::diag::{DiagCode, Diagnostic};
use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_memo::{
    objective_tag, policy_tag, CompiledProbe, Fingerprint, MemoEntryView, MemoTable, Preimage,
};

use crate::conformance;
use crate::report::Report;
use crate::structural;

/// Reverse of [`policy_tag`]: the policy a stored tag denotes.
pub fn policy_from_tag(tag: u8) -> Option<Policy> {
    Policy::ALL.into_iter().find(|&p| policy_tag(p) == tag)
}

/// Reverse of [`objective_tag`]: the objective a stored tag denotes.
pub fn objective_from_tag(tag: u8) -> Option<Objective> {
    [
        Objective::Communication,
        Objective::ResponseTime,
        Objective::TotalCost,
    ]
    .into_iter()
    .find(|&o| objective_tag(o) == tag)
}

/// Human-readable anchor for one entry's diagnostics.
fn entry_path(view: &MemoEntryView) -> String {
    let layer = match &view.buckets {
        Some(b) => format!("winner[{b}]"),
        None => "compiled".to_string(),
    };
    format!(
        "memo/{}/{}/p{}o{}/{layer}",
        view.spec.canonical(),
        view.fingerprint,
        view.policy,
        view.objective
    )
}

fn diag(code: DiagCode, view: &MemoEntryView, detail: String) -> Diagnostic {
    let mut d = Diagnostic::new(code, detail);
    d.path = Some(entry_path(view));
    d
}

/// Check one exported entry against the table's current generation.
/// Exposed for targeted tests; [`check_memo`] drives it over every
/// entry.
pub fn check_entry(view: &MemoEntryView, current_generation: u64) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Fingerprint must re-derive from the witness bytes alone.
    let derived = Fingerprint::of(&Preimage::from_raw(&view.witness));
    if derived != view.fingerprint {
        out.push(diag(
            DiagCode::MemoFingerprint,
            view,
            format!(
                "stored fingerprint {} does not re-derive from its witness ({derived})",
                view.fingerprint
            ),
        ));
    }

    // Tags must denote a real policy/objective.
    let policy = policy_from_tag(view.policy);
    let objective = objective_from_tag(view.objective);
    if policy.is_none() || objective.is_none() {
        out.push(diag(
            DiagCode::MemoFingerprint,
            view,
            format!(
                "entry key tags (policy {}, objective {}) denote no known policy/objective",
                view.policy, view.objective
            ),
        ));
    }

    // A compiled-layer witness must be the canonical preimage of its
    // structured key — not just *a* preimage of its fingerprint. (A
    // winner witness also covers the compiled plan, which the view does
    // not carry, so for winners the fingerprint re-derivation above is
    // the whole integrity check.)
    if view.buckets.is_none() {
        if let (Some(p), Some(o)) = (policy, objective) {
            let probe = CompiledProbe::new(&view.spec, p, o, view.env);
            if probe.witness != view.witness {
                out.push(diag(
                    DiagCode::MemoFingerprint,
                    view,
                    "compiled-entry witness is not the canonical preimage of its key".to_string(),
                ));
            }
        }
    }

    // Generations only ever come from the table's counter.
    if view.generation > current_generation {
        out.push(diag(
            DiagCode::MemoGeneration,
            view,
            format!(
                "entry generation {} is ahead of the table's {current_generation}",
                view.generation
            ),
        ));
    }

    // Every stored plan must be a structurally valid plan for its
    // group's query; winners must additionally conform to Table 1 —
    // a hit must be exactly as lintable as the cold plan it stands for.
    let query = view.spec.build();
    out.extend(structural::check_structure(&view.plan, Some(&query)));
    if view.buckets.is_some() {
        if let Some(p) = policy {
            out.extend(conformance::check_policy(&view.plan, p));
        }
        match view.cost {
            Some(c) if c.is_finite() && c >= 0.0 => {}
            Some(c) => out.push(diag(
                DiagCode::MemoCost,
                view,
                format!("winner entry's proved cost {c} is not finite and non-negative"),
            )),
            None => out.push(diag(
                DiagCode::MemoCost,
                view,
                "winner entry carries no proved cost".to_string(),
            )),
        }
    }

    out
}

/// Run the memo-consistency pass over every live entry of `table`.
pub fn check_memo(table: &MemoTable) -> Report {
    let generation = table.generation();
    let mut report = Report::new();
    for view in table.export_entries() {
        report.extend(check_entry(&view, generation));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::RelId;
    use csqp_core::{Annotation, JoinTree, Plan};
    use csqp_memo::{CacheBuckets, Env, MemoConfig, SelectProbe};
    use csqp_workload::WorkloadSpec;

    fn env() -> Env {
        Env {
            placement_seed: 7,
            num_servers: 2,
        }
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec::Chain {
            n: 3,
            selectivity: 1e-3,
        }
    }

    /// A QS-conformant left-deep plan for the test spec: joins at the
    /// inner relation, scans at the primary copy — Table 1's QS row.
    fn qs_plan() -> Plan {
        let q = spec().build();
        let order: Vec<RelId> = q.relations.iter().map(|r| r.id).collect();
        JoinTree::left_deep(&order).into_plan(&q, Annotation::InnerRel, Annotation::PrimaryCopy)
    }

    /// A table holding one compiled entry and one winner entry, installed
    /// through legitimately derived probes (the optimizer depends on this
    /// crate, so the population is hand-rolled the same way the real
    /// entry points derive their keys).
    fn populated() -> MemoTable {
        let table = MemoTable::new(MemoConfig::default());
        let plan = qs_plan();
        let compiled = CompiledProbe::new(
            &spec(),
            Policy::QueryShipping,
            Objective::Communication,
            env(),
        );
        table.install_compiled(&compiled, &plan);
        let select = SelectProbe::new(
            &spec(),
            &plan,
            Policy::QueryShipping,
            Objective::Communication,
            CacheBuckets::quantize(&[]),
            env(),
        );
        table.install_selected(&select, &plan, 42.0);
        table
    }

    #[test]
    fn honest_entries_pass() {
        let table = populated();
        let report = check_memo(&table);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn tag_reversal_is_total() {
        for p in Policy::ALL {
            assert_eq!(policy_from_tag(policy_tag(p)), Some(p));
        }
        for o in [
            Objective::Communication,
            Objective::ResponseTime,
            Objective::TotalCost,
        ] {
            assert_eq!(objective_from_tag(objective_tag(o)), Some(o));
        }
        assert_eq!(policy_from_tag(9), None);
        assert_eq!(objective_from_tag(9), None);
    }

    #[test]
    fn forged_witness_is_flagged() {
        let table = populated();
        let mut views = table.export_entries();
        let mut view = views.remove(0);
        view.witness[0] ^= 0xFF;
        let ds = check_entry(&view, table.generation());
        assert!(
            ds.iter().any(|d| d.code == DiagCode::MemoFingerprint),
            "{ds:?}"
        );
    }

    #[test]
    fn future_generation_is_flagged() {
        let table = populated();
        let mut view = table.export_entries().remove(0);
        view.generation = table.generation() + 1;
        let ds = check_entry(&view, table.generation());
        assert!(
            ds.iter().any(|d| d.code == DiagCode::MemoGeneration),
            "{ds:?}"
        );

        // An entry *behind* the current generation is stale but legal:
        // lazy invalidation drops it at the next probe.
        table.bump_generation();
        let view = table.export_entries().remove(0);
        assert!(view.generation < table.generation());
        let ds = check_entry(&view, table.generation());
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn missing_winner_cost_is_flagged() {
        let table = populated();
        let mut bad = None;
        for view in table.export_entries() {
            if view.buckets.is_some() {
                bad = Some(view);
            }
        }
        let mut view = bad.expect("populated table has a winner entry");
        view.cost = Some(f64::NAN);
        let ds = check_entry(&view, table.generation());
        assert!(ds.iter().any(|d| d.code == DiagCode::MemoCost), "{ds:?}");
    }
}
