//! Pass 3: cost-model and configuration invariants.
//!
//! The cost model (§3.1.2) is an analytic function from a bound plan to
//! resource-seconds; the optimizer trusts it blindly, so a sign error or
//! a non-monotone discontinuity (say, a hybrid-hash partitioning step
//! that *drops* cost when an input grows) would silently steer every
//! experiment. This pass checks the properties any ML86/GHK92-style model
//! must have, on the concrete plan being verified:
//!
//! * **Binding succeeds** — a structurally sound, well-formed plan must
//!   reach the site-binding fixpoint ([`DiagCode::UnresolvedSite`]).
//! * **Non-negative, finite resources** — every CPU/disk/wire/page
//!   component of the usage vector ([`DiagCode::NegativeResource`]).
//! * **Response ≤ sum of phases** — the response-time estimate assumes
//!   *full overlap* of the phases (§4.2.3): overlap can hide work, never
//!   invent it, so response time can never exceed total resource seconds
//!   ([`DiagCode::ResponseExceedsPhases`]).
//! * **Monotone in cardinality** — doubling every base relation must not
//!   make the plan cheaper, for both the communication and total-cost
//!   objectives ([`DiagCode::NonMonotoneCost`]).
//! * **Cardinalities bounded** — no sub-result estimate may exceed the
//!   product of its base-relation cardinalities; selectivities and
//!   selection factors only shrink ([`DiagCode::CardinalityBound`]).
//!
//! [`check_config`] vets the Table 2 parameters themselves (zero page
//! size, random I/O faster than sequential, …) so a hand-edited JSON
//! config is rejected before it skews a simulation.

use csqp_catalog::{Catalog, Estimator, QuerySpec, SiteId, SystemConfig};
use csqp_core::diag::{DiagCode, Diagnostic};
use csqp_core::{bind, BindContext, BindError, Plan};
use csqp_cost::{CostModel, Objective, ResourceUsage};

/// Relative slack for floating-point comparisons: the model sums many
/// f64 terms, so exact comparisons would flag rounding noise.
const REL_EPS: f64 = 1e-9;

/// Run the cost-invariant checks on `plan`. Assumes the structural pass
/// already passed; binding failures are still reported, not panicked.
pub fn check_cost_invariants(
    plan: &Plan,
    config: &SystemConfig,
    catalog: &Catalog,
    query: &QuerySpec,
    query_site: SiteId,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let bound = match bind(
        plan,
        BindContext {
            catalog,
            query_site,
        },
    ) {
        Ok(b) => b,
        Err(BindError::Cycle { unresolved }) => {
            out.push(Diagnostic::new(
                DiagCode::UnresolvedSite,
                format!(
                    "site binding stalled with {} unresolved nodes: {unresolved:?}",
                    unresolved.len()
                ),
            ));
            return out;
        }
        Err(BindError::Malformed { node, reason }) => {
            out.push(Diagnostic::at(DiagCode::DanglingChild, plan, node, reason));
            return out;
        }
    };

    let model = CostModel::new(config, catalog, query, query_site);
    let usage = model.usage(&bound);
    out.extend(check_usage(&usage));

    let response = model.response_time(&bound);
    let total = usage.total_seconds();
    if response > total * (1.0 + REL_EPS) {
        out.push(Diagnostic::new(
            DiagCode::ResponseExceedsPhases,
            format!(
                "response-time estimate {response:.6}s exceeds the sum of all \
                 resource phases {total:.6}s — full overlap can hide work, not invent it"
            ),
        ));
    }

    // Monotonicity: grow every base relation and re-cost the same plan.
    let scaled = scale_cardinalities(query, 2);
    out.extend(check_monotone_against(
        plan, config, catalog, query, &scaled, query_site,
    ));

    out.extend(check_cardinalities(plan, config, query));
    out
}

/// `query` with every base-relation cardinality multiplied by `factor`.
pub fn scale_cardinalities(query: &QuerySpec, factor: u64) -> QuerySpec {
    let mut scaled = query.clone();
    for r in &mut scaled.relations {
        r.tuples *= factor;
    }
    scaled
}

/// Check that re-costing `plan` against `scaled` (the same query with
/// every relation at least as large) is at least as expensive as against
/// `query`, for the size-driven objectives. Exposed separately so
/// `csqp-check` can feed a deliberately *shrunk* "scaled" query as a
/// negative fixture.
pub fn check_monotone_against(
    plan: &Plan,
    config: &SystemConfig,
    catalog: &Catalog,
    query: &QuerySpec,
    scaled: &QuerySpec,
    query_site: SiteId,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let base_model = CostModel::new(config, catalog, query, query_site);
    let scaled_model = CostModel::new(config, catalog, scaled, query_site);
    for objective in [Objective::Communication, Objective::TotalCost] {
        let (Some(base), Some(big)) = (
            base_model.evaluate_plan(plan, objective),
            scaled_model.evaluate_plan(plan, objective),
        ) else {
            continue; // binding failure already reported by the caller
        };
        if big < base * (1.0 - REL_EPS) {
            out.push(Diagnostic::new(
                DiagCode::NonMonotoneCost,
                format!(
                    "{objective} cost fell from {base:.6} to {big:.6} when every \
                     base relation grew — the model is not monotone in cardinality"
                ),
            ));
        }
    }
    out
}

/// Check a resource-usage vector for negative or non-finite components.
pub fn check_usage(usage: &ResourceUsage) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut bad = |what: String, v: f64| {
        if !v.is_finite() || v < 0.0 {
            out.push(Diagnostic::new(
                DiagCode::NegativeResource,
                format!("{what} is {v}, expected a finite non-negative value"),
            ));
        }
    };
    for (i, &v) in usage.cpu.iter().enumerate() {
        bad(format!("CPU seconds at site {i}"), v);
    }
    for (i, &v) in usage.disk.iter().enumerate() {
        bad(format!("disk seconds at site {i}"), v);
    }
    bad("network wire seconds".to_string(), usage.net_wire);
    bad("pages sent".to_string(), usage.pages_sent);
    out
}

/// Check that every sub-result cardinality estimate in `plan` stays
/// within the product of its base-relation cardinalities.
pub fn check_cardinalities(
    plan: &Plan,
    config: &SystemConfig,
    query: &QuerySpec,
) -> Vec<Diagnostic> {
    let est = Estimator::new(query, config);
    let mut out = Vec::new();
    for id in plan.postorder() {
        let rels = plan.rel_set(id);
        if rels.is_empty() {
            continue;
        }
        let tuples = est.tuples(rels);
        let bound: f64 = rels
            .iter()
            .map(|r| query.relations[r.index()].tuples as f64)
            .product();
        if !(0.0..=bound * (1.0 + REL_EPS)).contains(&tuples) {
            out.push(Diagnostic::at(
                DiagCode::CardinalityBound,
                plan,
                id,
                format!(
                    "estimated {tuples:.1} tuples for {} base relations whose \
                     cardinality product is {bound:.1} — a selectivity above 1.0 \
                     or a negative statistic",
                    rels.len()
                ),
            ));
        }
    }
    out
}

/// Validate the Table 2 simulation parameters: the checks a hand-edited
/// configuration file must pass before any simulation or costing.
pub fn check_config(config: &SystemConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut bad = |detail: String| {
        out.push(Diagnostic::new(DiagCode::ConfigInvariant, detail));
    };
    if config.mips == 0 {
        bad("mips is 0: every CPU charge would be infinite".into());
    }
    if config.page_size == 0 {
        bad("page_size is 0: page counts would divide by zero".into());
    }
    if config.net_bw_mbit == 0 {
        bad("net_bw_mbit is 0: wire transfers would never complete".into());
    }
    if config.num_disks == 0 {
        bad("num_disks is 0: servers could not read base relations".into());
    }
    if !config.fudge.is_finite() || config.fudge < 1.0 {
        bad(format!(
            "fudge factor is {}: hash tables need at least their input's space (≥ 1.0)",
            config.fudge
        ));
    }
    for (name, v) in [
        ("disk_seq_page_ms", config.disk_seq_page_ms),
        ("disk_rand_page_ms", config.disk_rand_page_ms),
    ] {
        if !v.is_finite() || v <= 0.0 {
            bad(format!("{name} is {v}: page I/O must take positive time"));
        }
    }
    if config.disk_rand_page_ms < config.disk_seq_page_ms {
        bad(format!(
            "random page I/O ({} ms) is faster than sequential ({} ms): \
             the disk model's premise is inverted",
            config.disk_rand_page_ms, config.disk_seq_page_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::RelId;
    use csqp_core::{Annotation, JoinTree};

    fn setup(n: u32) -> (QuerySpec, Catalog, SystemConfig) {
        let query = csqp_workload::chain_query(n, 1e-4);
        let mut catalog = Catalog::new(2);
        for i in 0..n {
            catalog.place(RelId(i), SiteId::server(1 + i % 2));
        }
        (query, catalog, SystemConfig::default())
    }

    fn plan(query: &QuerySpec, jann: Annotation, sann: Annotation) -> Plan {
        let order: Vec<RelId> = query.relations.iter().map(|r| r.id).collect();
        JoinTree::left_deep(&order).into_plan(query, jann, sann)
    }

    #[test]
    fn sound_plans_satisfy_all_cost_invariants() {
        let (query, catalog, config) = setup(4);
        for (jann, sann) in [
            (Annotation::Consumer, Annotation::Client),
            (Annotation::InnerRel, Annotation::PrimaryCopy),
            (Annotation::OuterRel, Annotation::PrimaryCopy),
        ] {
            let p = plan(&query, jann, sann);
            let ds = check_cost_invariants(&p, &config, &catalog, &query, SiteId::CLIENT);
            assert!(ds.is_empty(), "{jann}/{sann}: {ds:?}");
        }
    }

    #[test]
    fn cyclic_plan_reports_unresolved_sites() {
        let (query, catalog, config) = setup(3);
        let mut p = plan(&query, Annotation::Consumer, Annotation::PrimaryCopy);
        let joins = p.join_nodes();
        p.node_mut(joins[1]).ann = Annotation::InnerRel; // cycle with joins[0]
        let ds = check_cost_invariants(&p, &config, &catalog, &query, SiteId::CLIENT);
        assert!(
            ds.iter().any(|d| d.code == DiagCode::UnresolvedSite),
            "{ds:?}"
        );
    }

    #[test]
    fn negative_usage_component_is_flagged() {
        let mut u = ResourceUsage::zero(3);
        u.cpu[1] = -0.25;
        let ds = check_usage(&u);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::NegativeResource);
        assert!(ds[0].detail.contains("site 1"), "{}", ds[0].detail);

        let mut nan = ResourceUsage::zero(1);
        nan.net_wire = f64::NAN;
        assert!(!check_usage(&nan).is_empty());
    }

    #[test]
    fn shrunken_scaling_triggers_non_monotone_finding() {
        let (query, catalog, config) = setup(2);
        let p = plan(&query, Annotation::InnerRel, Annotation::PrimaryCopy);
        // A "scaled" query that actually shrinks the relations simulates
        // a model whose cost falls as inputs grow.
        let shrunk = {
            let mut q = query.clone();
            for r in &mut q.relations {
                r.tuples /= 10;
            }
            q
        };
        let ds = check_monotone_against(&p, &config, &catalog, &query, &shrunk, SiteId::CLIENT);
        assert!(
            ds.iter().any(|d| d.code == DiagCode::NonMonotoneCost),
            "{ds:?}"
        );
    }

    #[test]
    fn selectivity_above_one_breaks_the_cardinality_bound() {
        let (mut query, _, config) = setup(2);
        query.edges[0].selectivity = 2.0;
        let p = plan(&query, Annotation::Consumer, Annotation::Client);
        let ds = check_cardinalities(&p, &config, &query);
        assert!(
            ds.iter().any(|d| d.code == DiagCode::CardinalityBound),
            "{ds:?}"
        );
    }

    #[test]
    fn default_config_is_clean_and_broken_configs_are_not() {
        let config = SystemConfig::default();
        assert!(check_config(&config).is_empty());

        let mut zero_page = config.clone();
        zero_page.page_size = 0;
        assert!(check_config(&zero_page)
            .iter()
            .any(|d| d.code == DiagCode::ConfigInvariant));

        let mut inverted = config.clone();
        inverted.disk_rand_page_ms = 1.0;
        inverted.disk_seq_page_ms = 3.0;
        assert!(!check_config(&inverted).is_empty());

        let mut fudge = config;
        fudge.fudge = 0.5;
        assert!(!check_config(&fudge).is_empty());
    }
}
