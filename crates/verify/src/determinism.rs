//! Pass 4: simulator determinism lint.
//!
//! The paper's methodology depends on reproducible simulation runs
//! ("90% confidence intervals … within 5%" is only meaningful when a
//! seed pins the run). The kernel's [`EventQueue`] is deterministic *per
//! insertion order*: ties at the same timestamp break FIFO. That is a
//! sound tie-break only when the code scheduling the events does not
//! itself depend on iteration order of an unordered container — if it
//! does, the same simulation can produce different statistics from run
//! to run even with a fixed seed.
//!
//! This pass detects exactly that hazard for a concrete schedule: it
//! replays the same set of events under several permuted insertion
//! orders and diffs the observable pop sequences. A schedule whose
//! same-timestamp events carry *distinguishable* payloads in an
//! order-sensitive way is flagged ([`DiagCode::TieBreakNondeterminism`]);
//! schedules with unique timestamps, or indistinguishable ties, replay
//! identically and pass.
//!
//! [`check_pop_trace`] additionally lints any recorded delivery trace
//! for clock regressions ([`DiagCode::EventTimeRegression`]) — trivially
//! true for the binary-heap queue, but engine code that *re-derives*
//! delivery times (e.g. subtracting service from completion times) can
//! and should run its traces through the same lint.

use std::fmt::Debug;

use csqp_core::diag::{DiagCode, Diagnostic};
use csqp_simkernel::rng::SimRng;
use csqp_simkernel::{EventQueue, SimTime};

/// Lint a delivery-time trace for regressions: every event must be
/// delivered at or after its predecessor.
pub fn check_pop_trace(times: &[SimTime]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, pair) in times.windows(2).enumerate() {
        if pair[1] < pair[0] {
            out.push(Diagnostic::new(
                DiagCode::EventTimeRegression,
                format!(
                    "delivery #{} at t={}ns precedes delivery #{} at t={}ns",
                    i + 1,
                    pair[1].as_nanos(),
                    i,
                    pair[0].as_nanos()
                ),
            ));
        }
    }
    out
}

/// Replay `events` through an [`EventQueue`] under `permutations`
/// shuffled insertion orders (seeded by `seed`) and diff the pop
/// sequences against the given order's.
///
/// A difference means the schedule's outcome depends on insertion order:
/// somewhere two events share a timestamp but carry different payloads,
/// and whatever produced this schedule has no deterministic rule for
/// which comes first. The diagnostic names the first diverging delivery.
pub fn check_queue_determinism<E>(
    events: &[(SimTime, E)],
    seed: u64,
    permutations: usize,
) -> Vec<Diagnostic>
where
    E: Clone + PartialEq + Debug,
{
    let mut out = Vec::new();
    let baseline = drain(events.iter().cloned());
    out.extend(check_pop_trace(
        &baseline.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
    ));

    // Unique timestamps cannot tie; skip the replays.
    let mut times: Vec<u64> = events.iter().map(|(t, _)| t.as_nanos()).collect();
    times.sort_unstable();
    if times.windows(2).all(|w| w[0] != w[1]) {
        return out;
    }

    let mut rng = SimRng::seed_from_u64(seed);
    for k in 0..permutations {
        let mut perm: Vec<(SimTime, E)> = events.to_vec();
        rng.shuffle(&mut perm);
        let replay = drain(perm.into_iter());
        if let Some(i) = (0..baseline.len()).find(|&i| baseline[i] != replay[i]) {
            out.push(Diagnostic::new(
                DiagCode::TieBreakNondeterminism,
                format!(
                    "insertion permutation {k} changes delivery #{i} at t={}ns \
                     from {:?} to {:?}: same-timestamp events with \
                     distinguishable payloads have no deterministic order",
                    baseline[i].0.as_nanos(),
                    baseline[i].1,
                    replay[i].1
                ),
            ));
            break;
        }
    }
    out
}

/// Schedule all events, then pop until empty.
fn drain<E>(events: impl Iterator<Item = (SimTime, E)>) -> Vec<(SimTime, E)> {
    let mut q = EventQueue::new();
    for (t, e) in events {
        q.schedule(t, e);
    }
    let mut out = Vec::new();
    while let Some(ev) = q.pop() {
        out.push(ev);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime(ns)
    }

    #[test]
    fn unique_timestamps_are_deterministic() {
        let events: Vec<(SimTime, u32)> = (0u32..50).map(|i| (t(u64::from(i) * 10), i)).collect();
        assert!(check_queue_determinism(&events, 42, 8).is_empty());
    }

    #[test]
    fn identical_tied_payloads_are_deterministic() {
        // Ties exist, but the tied events are indistinguishable — no
        // observable nondeterminism.
        let events = vec![(t(5), "tick"), (t(5), "tick"), (t(9), "done")];
        assert!(check_queue_determinism(&events, 7, 8).is_empty());
    }

    #[test]
    fn distinguishable_ties_are_flagged() {
        let events = vec![(t(5), "A"), (t(5), "B"), (t(9), "C")];
        let ds = check_queue_determinism(&events, 7, 16);
        assert!(
            ds.iter()
                .any(|d| d.code == DiagCode::TieBreakNondeterminism),
            "{ds:?}"
        );
        let d = &ds[0];
        assert!(d.detail.contains("t=5ns"), "{}", d.detail);
    }

    #[test]
    fn pop_traces_from_the_queue_are_monotone() {
        let events: Vec<(SimTime, u32)> = (0u32..100)
            .rev()
            .map(|i| (t(u64::from(i) * 3), i))
            .collect();
        let trace: Vec<SimTime> = drain(events.into_iter()).iter().map(|(t, _)| *t).collect();
        assert!(check_pop_trace(&trace).is_empty());
    }

    #[test]
    fn regressing_trace_is_flagged() {
        let trace = vec![t(10), t(20), t(15), t(30)];
        let ds = check_pop_trace(&trace);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::EventTimeRegression);
        assert!(ds[0].detail.contains("#2"), "{}", ds[0].detail);
    }
}
