//! System-level model checking: N session machines composed with a
//! shared admission-queue / worker-pool / completion-channel model.
//!
//! The single-session checker in [`crate::protocol`] proves every
//! property that lives *inside* one connection. Everything that can
//! take down a serving stack under load lives *between* connections:
//! cross-session starvation, worker-pool exhaustion, lost wakeups,
//! shutdown races. This module composes N copies of the (unchanged)
//! pure [`protocol::step`] with a shared [`PoolModel`] and checks the
//! product machine exhaustively.
//!
//! The composition is itself a pure transition function,
//! [`system_step`], and the serving engine routes its arbitration
//! decisions through the same helpers the model uses
//! ([`submit_outcome`], [`completion_disposition`]) — so the machine
//! checked stays the machine served, one layer up from PR 5.
//!
//! ## The event alphabet is a projection
//!
//! Per-session events are restricted to `{FrameQuery, FrameBye,
//! WriteDrained, Disconnect}` and sessions start handshaken. The
//! dropped events (handshake ordering, garbage frames, deadline expiry,
//! truncated completions) are all *session-local*: the single-session
//! checker already explores them exhaustively, and none of them touch
//! the shared pool except through the same `TrySubmit`/`Completion`
//! surface the kept events exercise. Shrinking the alphabet keeps the
//! product space tractable without hiding any cross-session behavior.
//!
//! ## Properties
//!
//! - **Worker conservation** ([`DiagCode::SystemWorkerLeak`]): every
//!   in-flight slot of a live session is backed by exactly one job
//!   across queue ∪ busy ∪ done, and never more workers are leased than
//!   exist.
//! - **Bounded overtake** ([`DiagCode::SystemStarvation`]): a queued
//!   admission is picked up before more than [`MAX_OVERTAKE`]
//!   later-queued jobs overtake it. The real queue is FIFO, so the
//!   counter never moves; a mutant that picks LIFO starves the head.
//! - **No lost wakeup** ([`DiagCode::SystemLostWakeup`]): whenever the
//!   completion channel is non-empty, delivery is enabled. Checked as a
//!   bounded lasso: a reachable cycle (including environment stutter)
//!   through states where completions sit undeliverable is a liveness
//!   violation under weak fairness on delivery.
//! - **Sweep completeness** ([`DiagCode::SystemSweepIncomplete`]):
//!   after shutdown, every session is closed once the sweep runs.
//!
//! Violations carry minimal counterexample traces (BFS order) and
//! render through the same [`Report`] machinery as the protocol pass.
//!
//! ## Symmetry reduction
//!
//! Sessions are interchangeable: the initial state is symmetric and
//! every property is permutation-invariant. The checker therefore keys
//! its visited set on a *canonical form* — the minimum over all session
//! permutations of the state with session indices rewritten
//! ([`canonicalize`]). Soundness rests on `system_step` commuting with
//! permutation, which `tests/system_properties.rs` establishes by
//! proptest. With 3 sessions this shrinks the visited set by roughly
//! the number of non-trivially-symmetric states (logged by
//! `csqp-check --system` into `BENCH_check.json`).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt;

use crate::protocol::{self, Action, Event, SessionModel, SubmitOutcome};
use crate::report::Report;
use csqp_core::diag::{DiagCode, Diagnostic};

/// How many later-queued jobs may overtake a waiting admission before
/// the checker calls it starvation. The served queue is strict FIFO, so
/// any positive bound holds; the model keeps the bound small so a
/// fairness mutant is caught within a shallow depth.
pub const MAX_OVERTAKE: u8 = 2;

/// One admitted-but-not-yet-leased job waiting in the bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket {
    /// Index of the session that submitted the job.
    pub session: u8,
    /// The serial slot the reply will land in.
    pub slot: u8,
    /// How many later-queued tickets have been leased ahead of this
    /// one. Saturates just past [`MAX_OVERTAKE`]; FIFO pickup never
    /// increments it.
    pub overtaken: u8,
}

/// A leased or completed job: the (session, slot) pair a worker owes a
/// reply to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Job {
    /// Index of the owning session.
    pub session: u8,
    /// The serial slot the reply lands in.
    pub slot: u8,
}

/// The shared half of the system state: bounded admission queue, worker
/// pool, completion channel, and the poll-wakeup flag.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolModel {
    /// False once shutdown begins: submits observe `PoolGone`.
    pub open: bool,
    /// FIFO admission queue, bounded by `capacity`.
    pub queue: Vec<Ticket>,
    /// Jobs currently leased to workers. Kept sorted: lease order is
    /// not observable, only the multiset of leases is.
    pub busy: Vec<Job>,
    /// FIFO completion channel: finished jobs awaiting delivery.
    pub done: Vec<Job>,
    /// The engine's wakeup flag: true when the poll loop has been (or
    /// will be) woken to drain `done`. The served engine maintains
    /// "done non-empty ⇒ wake"; losing that is the lost-wakeup bug.
    pub wake: bool,
    /// Admission-queue bound (the engine's `queue_depth`).
    pub capacity: u8,
    /// Worker-pool size: at most this many jobs in `busy`.
    pub workers: u8,
}

impl PoolModel {
    /// A fresh open pool with the given bounds.
    #[must_use]
    pub fn new(capacity: u8, workers: u8) -> Self {
        PoolModel {
            open: true,
            queue: Vec::new(),
            busy: Vec::new(),
            done: Vec::new(),
            wake: false,
            capacity,
            workers,
        }
    }
}

/// The full product state: N session machines plus the shared pool.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SystemState {
    /// The per-connection machines, stepped by [`protocol::step`].
    pub sessions: Vec<SessionModel>,
    /// The shared admission / worker / completion model.
    pub pool: PoolModel,
    /// True once the shutdown sweep has run; afterwards every session
    /// must be closed (sweep completeness).
    pub swept: bool,
}

impl SystemState {
    /// A symmetric initial state: `n` handshaken sessions with the
    /// given pipeline window, over a fresh pool.
    #[must_use]
    pub fn new(n: u8, window: u8, capacity: u8, workers: u8) -> Self {
        let mut base = SessionModel::new(window);
        // Sessions start handshaken: the handshake itself is
        // session-local and covered by the protocol checker.
        let (after_hello, _) = protocol::step(&base, Event::FrameHello);
        base = after_hello;
        SystemState {
            sessions: vec![base; usize::from(n)],
            pool: PoolModel::new(capacity, workers),
            swept: false,
        }
    }

    /// True when nothing can ever happen again: the pool is closed and
    /// drained and every session is closed.
    #[must_use]
    pub fn terminal(&self) -> bool {
        !self.pool.open
            && self.pool.queue.is_empty()
            && self.pool.busy.is_empty()
            && self.pool.done.is_empty()
            && self.sessions.iter().all(|s| s.closed)
    }
}

/// One transition of the composed machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SysEvent {
    /// A session-local event on session `i`, arbitrated against the
    /// shared pool when it submits.
    Client(u8, Event),
    /// A free worker leases the queue head (a mutant may lease
    /// elsewhere; the pickup index is the stepper's choice).
    Pickup,
    /// A worker finishes the given leased job and posts it to the
    /// completion channel.
    Finish(Job),
    /// The poll loop drains one completion and routes it to its
    /// session (or drops it if the session is gone).
    Deliver,
    /// Shutdown: close the pool and sweep every session.
    Shutdown,
}

impl fmt::Display for SysEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysEvent::Client(i, ev) => write!(f, "client[{i}]:{ev}"),
            SysEvent::Pickup => write!(f, "pickup"),
            SysEvent::Finish(j) => write!(f, "finish[{}#{}]", j.session, j.slot),
            SysEvent::Deliver => write!(f, "deliver"),
            SysEvent::Shutdown => write!(f, "shutdown"),
        }
    }
}

/// What the engine must do in response to a [`system_step`], one layer
/// above the per-session [`Action`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SysAction {
    /// Perform a session-level action on session `i`.
    Session(u8, Action),
    /// Hand the job to a worker thread.
    Lease(Job),
    /// Post the finished job on the completion channel and wake the
    /// poll loop.
    Post(Job),
    /// Discard a completion whose session is gone or whose slot was
    /// already retired (cancelled, expired, poisoned).
    Drop(Job),
}

/// How the poll loop must treat one drained completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionDisposition {
    /// Route the reply into the session's write path.
    Deliver,
    /// The slot was retired while the job ran (cancel, deadline,
    /// poison, close): drop the payload, never write it.
    DropStale,
}

/// The single decision point for stale completions, shared by the model
/// and the engine's completion-drain loop: a completion is delivered
/// iff its session is still open, unpoisoned, and the slot is still
/// in flight.
#[must_use]
pub fn completion_disposition(session: &SessionModel, slot: u8) -> CompletionDisposition {
    if session.closed || session.poisoned || !session.is_inflight(slot) {
        CompletionDisposition::DropStale
    } else {
        CompletionDisposition::Deliver
    }
}

/// The single decision point for admission verdicts, shared by the
/// model's arbitration and the engine's `try_send` mapping: pool gone
/// beats queue full.
#[must_use]
pub fn submit_outcome(queue_full: bool, pool_gone: bool) -> SubmitOutcome {
    if pool_gone {
        SubmitOutcome::PoolGone
    } else if queue_full {
        SubmitOutcome::QueueFull
    } else {
        SubmitOutcome::Admitted
    }
}

/// The pluggable transition function: [`system_step`] for the real
/// machine, mutated variants in tests.
pub type SysStepper = fn(&SystemState, SysEvent) -> (SystemState, Vec<SysAction>);

/// Lease the ticket at `index`, charging one overtake to every ticket
/// it jumped. The real stepper always passes 0 (FIFO), so `overtaken`
/// never moves; an unfair mutant pays the charge and the starvation
/// check collects it.
fn take_ticket(pool: &mut PoolModel, index: usize) -> Ticket {
    for earlier in &mut pool.queue[..index] {
        earlier.overtaken = earlier.overtaken.saturating_add(1);
    }
    pool.queue.remove(index)
}

/// Step session `i` with a protocol event and arbitrate any resulting
/// `TrySubmit` against the pool, synchronously — mirroring the engine,
/// where `try_send` resolves in the same poll iteration.
fn step_session(next: &mut SystemState, i: u8, ev: Event, out: &mut Vec<SysAction>) {
    let idx = usize::from(i);
    let (mut s, actions) = protocol::step(&next.sessions[idx], ev);
    for a in &actions {
        out.push(SysAction::Session(i, *a));
        if let Action::TrySubmit(slot) = *a {
            let verdict = submit_outcome(
                next.pool.queue.len() >= usize::from(next.pool.capacity),
                !next.pool.open,
            );
            if verdict == SubmitOutcome::Admitted {
                next.pool.queue.push(Ticket {
                    session: i,
                    slot,
                    overtaken: 0,
                });
            }
            let (s2, actions2) = protocol::step(&s, Event::Submit(verdict));
            s = s2;
            for a2 in actions2 {
                out.push(SysAction::Session(i, a2));
            }
        }
    }
    next.sessions[idx] = s;
}

/// The pure composed transition function the checker explores and the
/// engine interprets. Same shape as [`protocol::step`]: total over
/// (state, event), pure, deterministic.
#[must_use]
pub fn system_step(state: &SystemState, event: SysEvent) -> (SystemState, Vec<SysAction>) {
    let mut next = state.clone();
    let mut out = Vec::new();
    match event {
        SysEvent::Client(i, ev) => step_session(&mut next, i, ev, &mut out),
        SysEvent::Pickup => {
            if !next.pool.queue.is_empty() && next.pool.busy.len() < usize::from(next.pool.workers)
            {
                let t = take_ticket(&mut next.pool, 0);
                let job = Job {
                    session: t.session,
                    slot: t.slot,
                };
                // `busy` is an unordered lease multiset; keep it sorted
                // so equal states hash equally.
                let pos = next.pool.busy.partition_point(|j| *j < job);
                next.pool.busy.insert(pos, job);
                out.push(SysAction::Lease(job));
            }
        }
        SysEvent::Finish(job) => {
            if let Some(pos) = next.pool.busy.iter().position(|j| *j == job) {
                next.pool.busy.remove(pos);
                next.pool.done.push(job);
                next.pool.wake = true;
                out.push(SysAction::Post(job));
            }
        }
        SysEvent::Deliver => {
            if next.pool.wake && !next.pool.done.is_empty() {
                let job = next.pool.done.remove(0);
                let sess = &next.sessions[usize::from(job.session)];
                match completion_disposition(sess, job.slot) {
                    CompletionDisposition::Deliver => {
                        step_session(
                            &mut next,
                            job.session,
                            Event::Completion(job.slot),
                            &mut out,
                        );
                    }
                    CompletionDisposition::DropStale => out.push(SysAction::Drop(job)),
                }
                // The engine re-arms the wakeup only if the drain left
                // completions behind.
                next.pool.wake = !next.pool.done.is_empty();
            }
        }
        SysEvent::Shutdown => {
            if next.pool.open {
                next.pool.open = false;
                next.swept = true;
                for i in 0..next.sessions.len() {
                    if !next.sessions[i].closed {
                        let i8 = u8::try_from(i).unwrap_or(u8::MAX);
                        step_session(&mut next, i8, Event::ShutdownSweep, &mut out);
                    }
                }
            }
        }
    }
    (next, out)
}

/// The cross-session event alphabet: the session-local projection plus
/// the pool's own moves. See the module docs for why the client
/// alphabet is restricted.
const CLIENT_EVENTS: [Event; 4] = [
    Event::FrameQuery,
    Event::FrameBye,
    Event::WriteDrained,
    Event::Disconnect,
];

/// Every event with any effect in `state` — the checker's branching
/// fan-out. Mirrors the guards in [`system_step`] so disabled events
/// are not explored as stutters.
#[must_use]
pub fn enabled_events(state: &SystemState) -> Vec<SysEvent> {
    let mut evs = Vec::new();
    for (i, s) in state.sessions.iter().enumerate() {
        if s.closed {
            continue;
        }
        let i8 = u8::try_from(i).unwrap_or(u8::MAX);
        for ev in CLIENT_EVENTS {
            // Reuse the protocol's own enabledness so the projection
            // stays honest about ordering (e.g. no queries mid-drain).
            if protocol::enabled_events(s).contains(&ev) {
                evs.push(SysEvent::Client(i8, ev));
            }
        }
    }
    if !state.pool.queue.is_empty() && state.pool.busy.len() < usize::from(state.pool.workers) {
        evs.push(SysEvent::Pickup);
    }
    for job in &state.pool.busy {
        evs.push(SysEvent::Finish(*job));
    }
    if state.pool.wake && !state.pool.done.is_empty() {
        evs.push(SysEvent::Deliver);
    }
    if state.pool.open {
        evs.push(SysEvent::Shutdown);
    }
    evs
}

/// Rewrite every session index in `state` through `perm` (old index →
/// new index) and reorder the session vector to match. Queue and done
/// keep their FIFO order; `busy` is re-sorted (it is a multiset).
#[must_use]
pub fn apply_permutation(state: &SystemState, perm: &[u8]) -> SystemState {
    let n = state.sessions.len();
    let mut sessions = state.sessions.clone();
    for (old, s) in state.sessions.iter().enumerate() {
        sessions[usize::from(perm[old])] = *s;
    }
    let remap = |j: Job| Job {
        session: perm[usize::from(j.session)],
        slot: j.slot,
    };
    let mut pool = state.pool.clone();
    for t in &mut pool.queue {
        t.session = perm[usize::from(t.session)];
    }
    for j in &mut pool.busy {
        *j = remap(*j);
    }
    pool.busy.sort_unstable();
    for j in &mut pool.done {
        *j = remap(*j);
    }
    debug_assert_eq!(sessions.len(), n);
    SystemState {
        sessions,
        pool,
        swept: state.swept,
    }
}

/// Generate all permutations of `0..n` (n ≤ 6 in practice; the checker
/// caps sessions well below that).
fn permutations(n: u8) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut items: Vec<u8> = (0..n).collect();
    heap_permute(&mut items, n as usize, &mut out);
    out
}

fn heap_permute(items: &mut Vec<u8>, k: usize, out: &mut Vec<Vec<u8>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// The canonical representative of `state`'s symmetry orbit: the
/// minimum (by `Ord`) over all session permutations. Keying the visited
/// set on this is sound because `system_step` commutes with
/// permutation (established by proptest in `tests/system_properties.rs`).
#[must_use]
pub fn canonicalize(state: &SystemState) -> SystemState {
    let n = u8::try_from(state.sessions.len()).unwrap_or(0);
    let mut best: Option<SystemState> = None;
    for perm in permutations(n) {
        let candidate = apply_permutation(state, &perm);
        match &best {
            Some(b) if *b <= candidate => {}
            _ => best = Some(candidate),
        }
    }
    best.unwrap_or_else(|| state.clone())
}

/// One property violation: the diagnostic plus the minimal event trace
/// (BFS order) that reaches it from the initial state.
#[derive(Debug, Clone)]
pub struct SysViolation {
    /// What broke, rendered through the shared diagnostic machinery.
    pub diagnostic: Diagnostic,
    /// The events from the initial state to the violating state. For a
    /// lasso violation the trace reaches the cycle entry; the cycle
    /// itself is described in the diagnostic detail.
    pub trace: Vec<SysEvent>,
}

/// Exploration statistics, reported by `csqp-check --system` and logged
/// to `BENCH_check.json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SysSearchStats {
    /// Distinct states visited (canonical forms when symmetry is on).
    pub states: u64,
    /// Transitions taken.
    pub transitions: u64,
    /// Depth reached (BFS layers).
    pub depth: u32,
    /// Largest BFS frontier observed.
    pub peak_frontier: u64,
}

/// Render one trace for a diagnostic detail string.
fn render_trace(trace: &[SysEvent]) -> String {
    if trace.is_empty() {
        return "at the initial state".to_string();
    }
    let steps: Vec<String> = trace.iter().map(|e| e.to_string()).collect();
    format!("after [{}]", steps.join(" -> "))
}

/// Bounded-exhaustive BFS over the composed machine, with optional
/// symmetry reduction and a bounded-lasso liveness pass.
#[derive(Debug, Clone, Copy)]
pub struct SystemChecker {
    /// Number of session machines (symmetric start).
    pub sessions: u8,
    /// Pipeline window per session. 1 keeps the product tractable; the
    /// per-session checker covers wide windows.
    pub window: u8,
    /// Admission-queue bound.
    pub queue_capacity: u8,
    /// Worker-pool size.
    pub workers: u8,
    /// BFS depth bound.
    pub depth: u32,
    /// Key the visited set on canonical forms.
    pub symmetry: bool,
    /// Stop after this many violations.
    pub max_violations: usize,
}

impl Default for SystemChecker {
    fn default() -> Self {
        SystemChecker {
            sessions: 3,
            window: 1,
            queue_capacity: 2,
            workers: 2,
            depth: 10,
            symmetry: true,
            max_violations: 8,
        }
    }
}

impl SystemChecker {
    /// Check every safety property of `state`, returning the broken
    /// ones. Pure and per-state; the lasso pass handles liveness.
    fn check_state(&self, state: &SystemState, trace: &[SysEvent]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let where_ = render_trace(trace);
        // Pool bounds.
        if state.pool.busy.len() > usize::from(state.pool.workers) {
            out.push(Diagnostic::new(
                DiagCode::SystemWorkerLeak,
                format!(
                    "{} workers leased but the pool has {} ({where_})",
                    state.pool.busy.len(),
                    state.pool.workers
                ),
            ));
        }
        if state.pool.queue.len() > usize::from(state.pool.capacity) {
            out.push(Diagnostic::new(
                DiagCode::SystemWorkerLeak,
                format!(
                    "admission queue holds {} jobs over capacity {} ({where_})",
                    state.pool.queue.len(),
                    state.pool.capacity
                ),
            ));
        }
        // Worker conservation: each in-flight slot of a live session is
        // backed by exactly one job across queue ∪ busy ∪ done.
        let mut backing: BTreeMap<Job, u32> = BTreeMap::new();
        for t in &state.pool.queue {
            *backing
                .entry(Job {
                    session: t.session,
                    slot: t.slot,
                })
                .or_insert(0) += 1;
        }
        for j in state.pool.busy.iter().chain(state.pool.done.iter()) {
            *backing.entry(*j).or_insert(0) += 1;
        }
        for (i, s) in state.sessions.iter().enumerate() {
            // A poisoned or closed session's jobs are intentionally
            // orphaned: the engine drops their completions as stale.
            if s.closed || s.poisoned {
                continue;
            }
            let i8 = u8::try_from(i).unwrap_or(u8::MAX);
            for slot in 0..protocol::MAX_SERIALS {
                if !s.is_inflight(slot) {
                    continue;
                }
                // A slot whose submit verdict is still pending has no
                // job yet by design.
                if s.pending_submit == Some(slot) {
                    continue;
                }
                let n = backing
                    .get(&Job { session: i8, slot })
                    .copied()
                    .unwrap_or(0);
                if n != 1 {
                    out.push(Diagnostic::new(
                        DiagCode::SystemWorkerLeak,
                        format!(
                            "session {i8} slot {slot} is in flight but backed by \
                             {n} jobs across queue/busy/done ({where_})"
                        ),
                    ));
                }
            }
        }
        // Bounded overtake.
        for t in &state.pool.queue {
            if t.overtaken > MAX_OVERTAKE {
                out.push(Diagnostic::new(
                    DiagCode::SystemStarvation,
                    format!(
                        "session {} slot {} was overtaken {} times in the \
                         admission queue (bound {MAX_OVERTAKE}) ({where_})",
                        t.session, t.slot, t.overtaken
                    ),
                ));
            }
        }
        // Sweep completeness.
        if state.swept {
            for (i, s) in state.sessions.iter().enumerate() {
                if !s.closed {
                    out.push(Diagnostic::new(
                        DiagCode::SystemSweepIncomplete,
                        format!("session {i} still open after the shutdown sweep ({where_})"),
                    ));
                }
            }
        }
        out
    }

    /// Explore the composed machine driven by `stepper` and report
    /// every violation found within the depth bound.
    #[must_use]
    pub fn run(&self, stepper: SysStepper) -> (Vec<SysViolation>, SysSearchStats) {
        let initial = SystemState::new(
            self.sessions,
            self.window,
            self.queue_capacity,
            self.workers,
        );
        let mut stats = SysSearchStats::default();
        let mut violations: Vec<SysViolation> = Vec::new();
        let mut visited: BTreeSet<SystemState> = BTreeSet::new();
        // Lasso bookkeeping: the set of *bad* states (completion posted
        // but delivery disabled) and the edges among them. Every state
        // also carries an implicit environment-stutter self-loop (the
        // system may simply do nothing), so membership in the bad set
        // alone witnesses a lasso — but we keep the edge relation so a
        // future strengthening to "eventually delivered within k" can
        // reuse it.
        let mut bad_states: BTreeSet<SystemState> = BTreeSet::new();

        let key = |s: &SystemState, symmetry: bool| {
            if symmetry {
                canonicalize(s)
            } else {
                s.clone()
            }
        };

        let mut frontier: VecDeque<(SystemState, Vec<SysEvent>)> = VecDeque::new();
        visited.insert(key(&initial, self.symmetry));
        stats.states = 1;
        for d in self.check_state(&initial, &[]) {
            violations.push(SysViolation {
                diagnostic: d,
                trace: Vec::new(),
            });
        }
        frontier.push_back((initial, Vec::new()));

        let mut depth = 0u32;
        while !frontier.is_empty() && depth < self.depth && violations.len() < self.max_violations {
            stats.peak_frontier = stats.peak_frontier.max(frontier.len() as u64);
            let mut next_frontier: VecDeque<(SystemState, Vec<SysEvent>)> = VecDeque::new();
            while let Some((state, trace)) = frontier.pop_front() {
                if violations.len() >= self.max_violations {
                    break;
                }
                for ev in enabled_events(&state) {
                    let (succ, _actions) = stepper(&state, ev);
                    stats.transitions += 1;
                    let k = key(&succ, self.symmetry);
                    if !visited.insert(k) {
                        continue;
                    }
                    stats.states += 1;
                    let mut t = trace.clone();
                    t.push(ev);
                    let diags = self.check_state(&succ, &t);
                    for d in diags {
                        violations.push(SysViolation {
                            diagnostic: d,
                            trace: t.clone(),
                        });
                        if violations.len() >= self.max_violations {
                            break;
                        }
                    }
                    // Lost-wakeup bad set: a completion is waiting but
                    // delivery is disabled. With the implicit stutter
                    // self-loop, reaching such a state at all is a
                    // lasso; record it and report after the search so
                    // the shortest witness wins.
                    if !succ.pool.done.is_empty()
                        && !succ.pool.wake
                        && bad_states.insert(key(&succ, self.symmetry))
                        && bad_states.len() == 1
                    {
                        violations.push(SysViolation {
                            diagnostic: Diagnostic::new(
                                DiagCode::SystemLostWakeup,
                                format!(
                                    "{} completion(s) sit in the channel with the \
                                     wakeup flag down: delivery is disabled and the \
                                     system can stutter here forever ({})",
                                    succ.pool.done.len(),
                                    render_trace(&t)
                                ),
                            ),
                            trace: t.clone(),
                        });
                    }
                    next_frontier.push_back((succ, t));
                }
            }
            frontier = next_frontier;
            if !frontier.is_empty() {
                depth += 1;
            }
        }
        stats.depth = depth;
        (violations, stats)
    }

    /// Run against the real [`system_step`] and fold the result into a
    /// [`Report`], protocol-checker style.
    #[must_use]
    pub fn report(&self) -> (Report, SysSearchStats) {
        let (violations, stats) = self.run(system_step);
        let mut report = Report::new();
        for v in violations {
            report.push(v.diagnostic);
        }
        (report, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> SystemChecker {
        SystemChecker::default()
    }

    #[test]
    fn real_system_is_clean_at_ci_depth() {
        let (report, stats) = checker().report();
        assert!(
            report.is_clean(),
            "real system machine violated a property: {report:?}"
        );
        assert!(stats.states > 100, "suspiciously small search: {stats:?}");
    }

    #[test]
    fn real_system_is_clean_without_symmetry_too() {
        let mut c = checker();
        c.symmetry = false;
        let (violations, stats) = c.run(system_step);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(stats.states > 100);
    }

    #[test]
    fn symmetry_reduction_shrinks_the_visited_set() {
        let with = checker();
        let mut without = checker();
        without.symmetry = false;
        let (_, s1) = with.run(system_step);
        let (_, s2) = without.run(system_step);
        assert!(
            s1.states < s2.states,
            "symmetry did not shrink the search: {} vs {}",
            s1.states,
            s2.states
        );
    }

    #[test]
    fn terminal_state_detection() {
        let mut st = SystemState::new(2, 1, 2, 2);
        assert!(!st.terminal());
        let (st2, _) = system_step(&st, SysEvent::Shutdown);
        st = st2;
        assert!(st.terminal(), "{st:?}");
    }

    #[test]
    fn submit_outcome_prefers_pool_gone() {
        assert_eq!(submit_outcome(true, true), SubmitOutcome::PoolGone);
        assert_eq!(submit_outcome(true, false), SubmitOutcome::QueueFull);
        assert_eq!(submit_outcome(false, false), SubmitOutcome::Admitted);
    }

    #[test]
    fn stale_completion_is_dropped() {
        let s = SessionModel::new(1);
        // Fresh session: slot 0 not in flight.
        assert_eq!(
            completion_disposition(&s, 0),
            CompletionDisposition::DropStale
        );
    }

    // ---- seeded mutants: each property must catch its bug -------------

    /// Mutant: LIFO pickup — leases the *newest* ticket, starving the
    /// queue head.
    fn lifo_pickup_mutant(state: &SystemState, event: SysEvent) -> (SystemState, Vec<SysAction>) {
        if event == SysEvent::Pickup {
            let mut next = state.clone();
            let mut out = Vec::new();
            if !next.pool.queue.is_empty() && next.pool.busy.len() < usize::from(next.pool.workers)
            {
                let last = next.pool.queue.len() - 1;
                let t = take_ticket(&mut next.pool, last);
                let job = Job {
                    session: t.session,
                    slot: t.slot,
                };
                let pos = next.pool.busy.partition_point(|j| *j < job);
                next.pool.busy.insert(pos, job);
                out.push(SysAction::Lease(job));
            }
            return (next, out);
        }
        system_step(state, event)
    }

    #[test]
    fn mutant_lifo_pickup_is_caught_as_starvation() {
        let mut c = checker();
        c.depth = 14;
        let (violations, _) = c.run(lifo_pickup_mutant);
        let starved: Vec<&SysViolation> = violations
            .iter()
            .filter(|v| v.diagnostic.code == DiagCode::SystemStarvation)
            .collect();
        assert!(
            !starved.is_empty(),
            "LIFO mutant not caught: {violations:?}"
        );
        // BFS order: the first witness is minimal.
        assert!(
            starved[0].trace.len() <= 14,
            "trace not minimal-ish: {:?}",
            starved[0].trace
        );
    }

    /// Mutant: a worker finishes but the completion is dropped on the
    /// floor — the slot leaks forever.
    fn swallow_finish_mutant(
        state: &SystemState,
        event: SysEvent,
    ) -> (SystemState, Vec<SysAction>) {
        if let SysEvent::Finish(job) = event {
            let mut next = state.clone();
            if let Some(pos) = next.pool.busy.iter().position(|j| *j == job) {
                next.pool.busy.remove(pos);
                // Bug: no push to `done`, no wake, no Post action.
            }
            return (next, Vec::new());
        }
        system_step(state, event)
    }

    #[test]
    fn mutant_swallowed_completion_is_caught_as_worker_leak() {
        let (violations, _) = checker().run(swallow_finish_mutant);
        let leak = violations
            .iter()
            .find(|v| v.diagnostic.code == DiagCode::SystemWorkerLeak);
        let leak = leak.unwrap_or_else(|| panic!("swallow mutant not caught: {violations:?}"));
        // query -> pickup -> finish is the shortest witness.
        assert!(leak.trace.len() <= 3, "not minimal: {:?}", leak.trace);
    }

    /// Mutant: the completion is posted but the poll loop is never
    /// woken — the classic lost wakeup.
    fn no_wake_mutant(state: &SystemState, event: SysEvent) -> (SystemState, Vec<SysAction>) {
        if let SysEvent::Finish(job) = event {
            let mut next = state.clone();
            let mut out = Vec::new();
            if let Some(pos) = next.pool.busy.iter().position(|j| *j == job) {
                next.pool.busy.remove(pos);
                next.pool.done.push(job);
                // Bug: `wake` stays false.
                out.push(SysAction::Post(job));
            }
            return (next, out);
        }
        system_step(state, event)
    }

    #[test]
    fn mutant_missing_wakeup_is_caught_as_lost_wakeup() {
        let (violations, _) = checker().run(no_wake_mutant);
        let lost = violations
            .iter()
            .find(|v| v.diagnostic.code == DiagCode::SystemLostWakeup);
        let lost = lost.unwrap_or_else(|| panic!("no-wake mutant not caught: {violations:?}"));
        assert!(lost.trace.len() <= 3, "not minimal: {:?}", lost.trace);
    }

    /// Mutant: the shutdown sweep skips the highest-index session.
    fn partial_sweep_mutant(state: &SystemState, event: SysEvent) -> (SystemState, Vec<SysAction>) {
        if event == SysEvent::Shutdown {
            let mut next = state.clone();
            let mut out = Vec::new();
            if next.pool.open {
                next.pool.open = false;
                next.swept = true;
                let n = next.sessions.len();
                for i in 0..n.saturating_sub(1) {
                    // Bug: `..n - 1` leaves the last session open.
                    if !next.sessions[i].closed {
                        let i8 = u8::try_from(i).unwrap_or(u8::MAX);
                        let (s, acts) = protocol::step(&next.sessions[i], Event::ShutdownSweep);
                        next.sessions[i] = s;
                        for a in acts {
                            out.push(SysAction::Session(i8, a));
                        }
                    }
                }
            }
            return (next, out);
        }
        system_step(state, event)
    }

    #[test]
    fn mutant_partial_sweep_is_caught_as_sweep_incomplete() {
        let (violations, _) = checker().run(partial_sweep_mutant);
        let missed = violations
            .iter()
            .find(|v| v.diagnostic.code == DiagCode::SystemSweepIncomplete);
        let missed =
            missed.unwrap_or_else(|| panic!("partial-sweep mutant not caught: {violations:?}"));
        // Shutdown from the initial state is the shortest witness.
        assert_eq!(missed.trace.len(), 1, "not minimal: {:?}", missed.trace);
    }

    // ---- symmetry machinery ------------------------------------------

    #[test]
    fn canonicalize_is_idempotent() {
        let st = SystemState::new(3, 1, 2, 2);
        let c = canonicalize(&st);
        assert_eq!(canonicalize(&c), c);
    }

    #[test]
    fn canonicalize_collapses_a_permuted_state() {
        let st = SystemState::new(3, 1, 2, 2);
        // Make it asymmetric: session 0 submits a query.
        let (st, _) = system_step(&st, SysEvent::Client(0, Event::FrameQuery));
        let permuted = apply_permutation(&st, &[2, 0, 1]);
        assert_ne!(st, permuted, "permutation should move an asymmetric state");
        assert_eq!(canonicalize(&st), canonicalize(&permuted));
    }

    #[test]
    fn permutation_identity_is_a_noop() {
        let st = SystemState::new(3, 1, 2, 2);
        let (st, _) = system_step(&st, SysEvent::Client(1, Event::FrameQuery));
        assert_eq!(apply_permutation(&st, &[0, 1, 2]), st);
    }
}
