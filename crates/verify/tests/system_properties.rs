//! Soundness of the system checker's symmetry reduction, by property
//! test: [`system_step`] commutes with session permutation
//! (permute-then-step == step-then-permute), and canonicalization is
//! permutation-invariant. Together these are exactly what makes it
//! sound to key the visited set on canonical forms — the reduction can
//! never hide a reachable violation, because every orbit member reaches
//! the same orbits.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_verify::system::{
    apply_permutation, canonicalize, enabled_events, system_step, Job, SysAction, SysEvent,
    SystemState,
};
use proptest::prelude::*;

const N: u8 = 3;

/// All 6 permutations of 3 sessions.
const PERMS: [[u8; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// Drive the machine down a drawn path of enabled events, so every
/// state the property sees is *reachable* — the only states the
/// checker's reduction ever keys on.
fn reachable_state(path: &[u8]) -> SystemState {
    let mut st = SystemState::new(N, 1, 2, 2);
    for &choice in path {
        let evs = enabled_events(&st);
        if evs.is_empty() {
            break;
        }
        let ev = evs[usize::from(choice) % evs.len()];
        let (next, _) = system_step(&st, ev);
        st = next;
    }
    st
}

/// Rewrite the session indices inside an event through `perm`.
fn permute_event(ev: SysEvent, perm: &[u8; 3]) -> SysEvent {
    match ev {
        SysEvent::Client(i, e) => SysEvent::Client(perm[usize::from(i)], e),
        SysEvent::Finish(j) => SysEvent::Finish(Job {
            session: perm[usize::from(j.session)],
            slot: j.slot,
        }),
        other => other,
    }
}

/// Rewrite the session indices inside an action through `perm`.
fn permute_action(a: SysAction, perm: &[u8; 3]) -> SysAction {
    let remap = |j: Job| Job {
        session: perm[usize::from(j.session)],
        slot: j.slot,
    };
    match a {
        SysAction::Session(i, act) => SysAction::Session(perm[usize::from(i)], act),
        SysAction::Lease(j) => SysAction::Lease(remap(j)),
        SysAction::Post(j) => SysAction::Post(remap(j)),
        SysAction::Drop(j) => SysAction::Drop(remap(j)),
    }
}

proptest! {
    /// The reduction's soundness core: stepping and permuting commute,
    /// on states *and* on the emitted actions (as multisets — action
    /// order within one step is an emission detail).
    #[test]
    fn system_step_commutes_with_session_permutation(
        path in proptest::collection::vec(0u8..=255, 0..12),
        perm_idx in 0usize..6,
        choice in 0u8..=255,
    ) {
        let perm = PERMS[perm_idx];
        let st = reachable_state(&path);
        let evs = enabled_events(&st);
        if evs.is_empty() {
            // Terminal state (post-shutdown, fully drained): vacuous.
            return Ok(());
        }
        let ev = evs[usize::from(choice) % evs.len()];

        // step, then permute
        let (stepped, actions) = system_step(&st, ev);
        let stepped_then_permuted = apply_permutation(&stepped, &perm);

        // permute, then step (with the event's indices rewritten)
        let permuted = apply_permutation(&st, &perm);
        let (permuted_then_stepped, actions_p) =
            system_step(&permuted, permute_event(ev, &perm));

        prop_assert_eq!(stepped_then_permuted, permuted_then_stepped);

        let mut lhs: Vec<SysAction> =
            actions.iter().map(|a| permute_action(*a, &perm)).collect();
        let mut rhs = actions_p;
        lhs.sort_unstable();
        rhs.sort_unstable();
        prop_assert_eq!(lhs, rhs);
    }

    /// Permuting an event's enabledness matches: the permuted state
    /// enables exactly the permuted events.
    #[test]
    fn enabledness_commutes_with_permutation(
        path in proptest::collection::vec(0u8..=255, 0..12),
        perm_idx in 0usize..6,
    ) {
        let perm = PERMS[perm_idx];
        let st = reachable_state(&path);
        let mut lhs: Vec<SysEvent> = enabled_events(&st)
            .into_iter()
            .map(|e| permute_event(e, &perm))
            .collect();
        let mut rhs = enabled_events(&apply_permutation(&st, &perm));
        lhs.sort_unstable();
        rhs.sort_unstable();
        prop_assert_eq!(lhs, rhs);
    }

    /// Every member of an orbit canonicalizes to the same
    /// representative, and canonicalization is idempotent.
    #[test]
    fn canonicalization_is_orbit_invariant(
        path in proptest::collection::vec(0u8..=255, 0..12),
        perm_idx in 0usize..6,
    ) {
        let perm = PERMS[perm_idx];
        let st = reachable_state(&path);
        let canon = canonicalize(&st);
        prop_assert_eq!(canonicalize(&apply_permutation(&st, &perm)), canon.clone());
        prop_assert_eq!(canonicalize(&canon), canon);
    }
}
