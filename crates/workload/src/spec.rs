//! Declarative, serializable workload specifications.
//!
//! A [`WorkloadSpec`] names one of the benchmark query shapes of §3.3 (and
//! the extensions) by its parameters instead of by a materialized
//! [`QuerySpec`]. It round-trips through JSON, which is what the serving
//! layer's QUERY frame carries on the wire: the client declares *what* to
//! run, the server materializes the query against its own catalog.
//!
//! Validation happens at decode time ([`WorkloadSpec::from_json`] returns
//! typed errors for out-of-range parameters) so that a server can never be
//! panicked by a malformed or hostile frame — [`WorkloadSpec::build`] on a
//! decoded spec is total.

use csqp_catalog::QuerySpec;
use csqp_json::{obj, Json, JsonError};

use crate::{chain_query, spj_query, star_query};

/// The largest relation count a spec may request. Matches the `RelSet`
/// bitset limit (64) that caps every query in the workspace.
pub const MAX_RELATIONS: u32 = 64;

/// A benchmark query shape, by parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// An `n`-way chain join (§3.3) with the given per-edge selectivity.
    Chain {
        /// Number of relations (≥ 1).
        n: u32,
        /// Per-edge join selectivity in `(0, 1]`.
        selectivity: f64,
    },
    /// An `n`-way star join around hub relation 0.
    Star {
        /// Number of relations (≥ 2).
        n: u32,
        /// Per-edge join selectivity in `(0, 1]`.
        selectivity: f64,
    },
    /// A select-project-join chain: a chain query with a selection of the
    /// given selectivity on every `k`-th relation (§2.1).
    Spj {
        /// Number of relations (≥ 1).
        n: u32,
        /// Per-edge join selectivity in `(0, 1]`.
        join_sel: f64,
        /// Selection selectivity in `(0, 1]`.
        selection: f64,
        /// A selection lands on relations `0, k, 2k, …` (≥ 1).
        every_k: u32,
    },
}

impl WorkloadSpec {
    /// Materialize the query. Total on validated specs (anything decoded
    /// by [`WorkloadSpec::from_json`] or accepted by
    /// [`WorkloadSpec::validate`]).
    pub fn build(&self) -> QuerySpec {
        match *self {
            WorkloadSpec::Chain { n, selectivity } => chain_query(n, selectivity),
            WorkloadSpec::Star { n, selectivity } => star_query(n, selectivity),
            WorkloadSpec::Spj {
                n,
                join_sel,
                selection,
                every_k,
            } => spj_query(n, join_sel, selection, every_k),
        }
    }

    /// Number of relations the materialized query will have.
    pub fn num_relations(&self) -> u32 {
        match *self {
            WorkloadSpec::Chain { n, .. }
            | WorkloadSpec::Star { n, .. }
            | WorkloadSpec::Spj { n, .. } => n,
        }
    }

    /// Check every parameter range [`build`](WorkloadSpec::build) relies
    /// on; the error names the offending field.
    pub fn validate(&self) -> Result<(), JsonError> {
        let sel_ok = |s: f64| s > 0.0 && s <= 1.0;
        let check = |ok: bool, path: &str, msg: &str| -> Result<(), JsonError> {
            if ok {
                Ok(())
            } else {
                Err(JsonError::decode(path, msg))
            }
        };
        check(
            self.num_relations() >= 1 && self.num_relations() <= MAX_RELATIONS,
            "n",
            "relation count must be in 1..=64",
        )?;
        match *self {
            WorkloadSpec::Chain { selectivity, .. } => check(
                sel_ok(selectivity),
                "selectivity",
                "selectivity must be in (0, 1]",
            ),
            WorkloadSpec::Star { n, selectivity } => {
                check(n >= 2, "n", "a star join needs at least 2 relations")?;
                check(
                    sel_ok(selectivity),
                    "selectivity",
                    "selectivity must be in (0, 1]",
                )
            }
            WorkloadSpec::Spj {
                join_sel,
                selection,
                every_k,
                ..
            } => {
                check(sel_ok(join_sel), "join_sel", "join_sel must be in (0, 1]")?;
                check(
                    sel_ok(selection),
                    "selection",
                    "selection must be in (0, 1]",
                )?;
                check(every_k >= 1, "every_k", "every_k must be at least 1")
            }
        }
    }

    /// Serialize as a JSON value (the QUERY frame embeds this).
    pub fn to_json(&self) -> Json {
        match *self {
            WorkloadSpec::Chain { n, selectivity } => obj(vec![
                ("kind", Json::from("chain")),
                ("n", Json::from(n)),
                ("selectivity", Json::from(selectivity)),
            ]),
            WorkloadSpec::Star { n, selectivity } => obj(vec![
                ("kind", Json::from("star")),
                ("n", Json::from(n)),
                ("selectivity", Json::from(selectivity)),
            ]),
            WorkloadSpec::Spj {
                n,
                join_sel,
                selection,
                every_k,
            } => obj(vec![
                ("kind", Json::from("spj")),
                ("n", Json::from(n)),
                ("join_sel", Json::from(join_sel)),
                ("selection", Json::from(selection)),
                ("every_k", Json::from(every_k)),
            ]),
        }
    }

    /// Decode and validate a spec serialized by
    /// [`WorkloadSpec::to_json`].
    pub fn from_json(doc: &Json) -> Result<WorkloadSpec, JsonError> {
        let u32_of = |k: &str| -> Result<u32, JsonError> {
            doc.field(k)?
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| JsonError::decode(k, "expected a non-negative integer"))
        };
        let f64_of = |k: &str| -> Result<f64, JsonError> {
            doc.field(k)?
                .as_f64()
                .ok_or_else(|| JsonError::decode(k, "expected a number"))
        };
        let spec = match doc.field("kind")?.as_str() {
            Some("chain") => WorkloadSpec::Chain {
                n: u32_of("n")?,
                selectivity: f64_of("selectivity")?,
            },
            Some("star") => WorkloadSpec::Star {
                n: u32_of("n")?,
                selectivity: f64_of("selectivity")?,
            },
            Some("spj") => WorkloadSpec::Spj {
                n: u32_of("n")?,
                join_sel: f64_of("join_sel")?,
                selection: f64_of("selection")?,
                every_k: u32_of("every_k")?,
            },
            _ => {
                return Err(JsonError::decode(
                    "kind",
                    "expected \"chain\", \"star\" or \"spj\"",
                ))
            }
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Canonical string form — a stable cache/placement key.
    pub fn canonical(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_kind() {
        for spec in [
            WorkloadSpec::Chain {
                n: 10,
                selectivity: 1e-4,
            },
            WorkloadSpec::Star {
                n: 5,
                selectivity: 2e-5,
            },
            WorkloadSpec::Spj {
                n: 6,
                join_sel: 1e-4,
                selection: 0.2,
                every_k: 2,
            },
        ] {
            let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, back);
            let q = back.build();
            assert_eq!(q.num_relations() as u32, spec.num_relations());
        }
    }

    #[test]
    fn rejects_out_of_range_parameters() {
        let bad = [
            r#"{"kind":"chain","n":0,"selectivity":1e-4}"#,
            r#"{"kind":"chain","n":65,"selectivity":1e-4}"#,
            r#"{"kind":"chain","n":2,"selectivity":0}"#,
            r#"{"kind":"chain","n":2,"selectivity":1.5}"#,
            r#"{"kind":"star","n":1,"selectivity":1e-4}"#,
            r#"{"kind":"spj","n":4,"join_sel":1e-4,"selection":0.2,"every_k":0}"#,
            r#"{"kind":"spj","n":4,"join_sel":1e-4,"selection":-0.1,"every_k":2}"#,
            r#"{"kind":"nope","n":4}"#,
            r#"{"n":4}"#,
        ];
        for text in bad {
            let doc = Json::parse(text).unwrap();
            assert!(WorkloadSpec::from_json(&doc).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn canonical_is_stable() {
        let spec = WorkloadSpec::Chain {
            n: 2,
            selectivity: 1e-4,
        };
        assert_eq!(spec.canonical(), spec.canonical());
        assert!(spec.canonical().contains("\"chain\""));
    }
}
