//! Benchmark workloads of the study (§3.3).
//!
//! "We use a benchmark consisting of 2-way and 10-way joins. … Each
//! relation used in the study has 10,000 tuples of 100 bytes each. …
//! The benchmark queries are chain joins with moderate selectivity …
//! a join of two equal-sized base relations returns a result that is the
//! size and cardinality of one base relation."
//!
//! The HiSel variant (§5.2) has "only 20% of the tuples of every input
//! relation participate in the output of a join".
//!
//! Placement scenarios follow §4.3: "the ten base relations used in a
//! query are placed randomly among the servers (ensuring that each server
//! has at least one base relation)".

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use csqp_catalog::{Catalog, JoinEdge, QuerySpec, RelId, Relation, SiteId};
use csqp_simkernel::rng::SimRng;

pub mod spec;

pub use spec::WorkloadSpec;

/// Moderate selectivity: |A ⋈ B| = |A| = |B| for 10k-tuple relations.
pub const MODERATE_SEL: f64 = 1e-4;

/// HiSel selectivity: 20% of each input participates, |A ⋈ B| = 2,000
/// for 10k-tuple relations (⇒ 2,000 / (10,000 × 10,000)).
pub const HISEL_SEL: f64 = 2e-5;

/// An `n`-way chain join over benchmark relations with the given per-edge
/// selectivity, with the §3.3-implied unary keys declared.
pub fn chain_query(n: u32, selectivity: f64) -> QuerySpec {
    assert!(n >= 1);
    let rels = (0..n)
        .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
        .collect();
    let edges = (0..n.saturating_sub(1))
        .map(|i| JoinEdge {
            a: RelId(i),
            b: RelId(i + 1),
            selectivity,
        })
        .collect();
    declare_implied_keys(QuerySpec::new(rels, edges))
}

/// Declare every unary key the query's own selectivities imply.
///
/// §3.3's "a join of two equal-sized base relations returns a result that
/// is the size and cardinality of one base relation" is exactly the key
/// property: a per-edge selectivity of at most `1 / |r|` means each tuple
/// of the other side matches at most one tuple of `r` in the worst case,
/// so `r`'s join attribute behaves as a unary key. A relation is declared
/// keyed iff it has at least one incident join edge and *every* incident
/// edge satisfies the inequality — the condition the bound analyzer's
/// `bound-key-unsound` audit re-checks. Both MODERATE_SEL (= 1/10,000
/// exactly) and HISEL_SEL qualify for benchmark relations.
pub fn declare_implied_keys(mut query: QuerySpec) -> QuerySpec {
    for i in 0..query.relations.len() {
        let r = &query.relations[i];
        if r.tuples == 0 {
            continue;
        }
        let limit = 1.0 / r.tuples as f64;
        let incident: Vec<&JoinEdge> = query
            .edges
            .iter()
            .filter(|e| e.a == r.id || e.b == r.id)
            .collect();
        // A float `<=` against `1/tuples` plus strict positivity: a zero
        // or negative selectivity is a degenerate spec, not a key.
        let keyed = !incident.is_empty()
            && incident
                .iter()
                .all(|e| e.selectivity > 0.0 && e.selectivity <= limit);
        query.relations[i].key = keyed;
    }
    query
}

/// The paper's simple 2-way join.
pub fn two_way() -> QuerySpec {
    chain_query(2, MODERATE_SEL)
}

/// The paper's complex 10-way chain join.
pub fn ten_way() -> QuerySpec {
    chain_query(10, MODERATE_SEL)
}

/// The HiSel 10-way chain join of §5.2.
pub fn ten_way_hisel() -> QuerySpec {
    chain_query(10, HISEL_SEL)
}

/// A select-project-join chain: the chain query with a selection
/// predicate of the given selectivity on every `k`-th relation — the
/// full SPJ shape of §2.1 (projection is the implicit 100-byte width
/// convention of §3.3).
pub fn spj_query(n: u32, join_sel: f64, selection: f64, every_k: u32) -> QuerySpec {
    assert!(every_k >= 1);
    let mut q = chain_query(n, join_sel);
    for i in (0..n).step_by(every_k as usize) {
        q = q.with_selection(RelId(i), selection);
    }
    q
}

/// An `n`-way star join (hub relation 0), for coverage beyond the paper's
/// chains ("We have experimented with a variety of join graphs", §3.3).
pub fn star_query(n: u32, selectivity: f64) -> QuerySpec {
    assert!(n >= 2);
    let rels = (0..n)
        .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
        .collect();
    let edges = (1..n)
        .map(|i| JoinEdge {
            a: RelId(0),
            b: RelId(i),
            selectivity,
        })
        .collect();
    declare_implied_keys(QuerySpec::new(rels, edges))
}

/// Place all relations on a single server.
pub fn single_server_placement(query: &QuerySpec) -> Catalog {
    let mut c = Catalog::new(1);
    for r in &query.relations {
        c.place(r.id, SiteId::server(1));
    }
    c
}

/// Random placement over `num_servers` servers, each server receiving at
/// least one relation (§4.3). Requires at least as many relations as
/// servers.
pub fn random_placement(query: &QuerySpec, num_servers: u32, rng: &mut SimRng) -> Catalog {
    let n = query.num_relations() as u32;
    assert!(
        n >= num_servers,
        "cannot give each of {num_servers} servers a relation with only {n} relations"
    );
    let mut c = Catalog::new(num_servers);
    // Deal one relation to each server first, then the rest uniformly.
    let mut rel_ids: Vec<RelId> = query.relations.iter().map(|r| r.id).collect();
    rng.shuffle(&mut rel_ids);
    for (i, rel) in rel_ids.iter().enumerate() {
        let server = if (i as u32) < num_servers {
            SiteId::server(i as u32 + 1)
        } else {
            SiteId::server(rng.below(num_servers as usize) as u32 + 1)
        };
        c.place(*rel, server);
    }
    c
}

/// Cache the same fraction of every relation at the client (the x-axis of
/// Figures 2–5).
pub fn cache_all(catalog: &mut Catalog, query: &QuerySpec, fraction: f64) {
    for r in &query.relations {
        catalog.set_cached_fraction(r.id, fraction);
    }
}

/// Fully cache `k` randomly chosen relations (Fig 7: "five of the ten
/// relations are cached").
pub fn cache_k_relations(catalog: &mut Catalog, query: &QuerySpec, k: usize, rng: &mut SimRng) {
    let mut rel_ids: Vec<RelId> = query.relations.iter().map(|r| r.id).collect();
    assert!(k <= rel_ids.len());
    rng.shuffle(&mut rel_ids);
    for rel in rel_ids.into_iter().take(k) {
        catalog.set_cached_fraction(rel, 1.0);
    }
}

/// The server-disk load levels of Figure 4, in requests per second.
pub const FIG4_LOAD_LEVELS: [f64; 4] = [0.0, 40.0, 60.0, 70.0];

/// Approximate disk utilization produced by an external random-read load,
/// used to parameterize the cost model's load awareness: `rate × random
/// service time`, capped below saturation.
pub fn load_utilization(rate_per_sec: f64, rand_page_ms: f64) -> f64 {
    (rate_per_sec * rand_page_ms / 1e3).min(0.95)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{Estimator, RelSet, SystemConfig};

    #[test]
    fn benchmark_relations_match_paper() {
        let q = ten_way();
        assert_eq!(q.num_relations(), 10);
        for r in &q.relations {
            assert_eq!(r.tuples, 10_000);
            assert_eq!(r.tuple_bytes, 100);
            assert_eq!(r.pages(4096), 250);
        }
        assert_eq!(q.edges.len(), 9);
    }

    #[test]
    fn moderate_chain_preserves_size() {
        let q = ten_way();
        let cfg = SystemConfig::default();
        let est = Estimator::new(&q, &cfg);
        let all = q.all_rels();
        assert_eq!(est.tuples_int(all), 10_000);
        assert_eq!(est.pages_int(all), 250);
    }

    #[test]
    fn hisel_two_way_is_2000_tuples() {
        let q = ten_way_hisel();
        let cfg = SystemConfig::default();
        let est = Estimator::new(&q, &cfg);
        let pair = RelSet::single(RelId(0)).union(RelSet::single(RelId(1)));
        assert_eq!(est.tuples_int(pair), 2_000);
    }

    #[test]
    fn random_placement_covers_every_server() {
        let q = ten_way();
        for servers in 1..=10 {
            let mut rng = SimRng::seed_from_u64(servers as u64);
            let cat = random_placement(&q, servers, &mut rng);
            for s in 1..=servers {
                assert!(
                    !cat.relations_at(SiteId::server(s)).is_empty(),
                    "server {s} of {servers} got no relation"
                );
            }
            let placed: usize = (1..=servers)
                .map(|s| cat.relations_at(SiteId::server(s)).len())
                .sum();
            assert_eq!(placed, 10);
        }
    }

    #[test]
    #[should_panic(expected = "cannot give each")]
    fn too_many_servers_rejected() {
        let q = two_way();
        let mut rng = SimRng::seed_from_u64(1);
        random_placement(&q, 3, &mut rng);
    }

    #[test]
    fn cache_helpers() {
        let q = ten_way();
        let mut rng = SimRng::seed_from_u64(5);
        let mut cat = random_placement(&q, 3, &mut rng);
        cache_all(&mut cat, &q, 0.25);
        for r in &q.relations {
            assert!((cat.cached_fraction(r.id) - 0.25).abs() < 1e-12);
        }
        cache_all(&mut cat, &q, 0.0);
        cache_k_relations(&mut cat, &q, 5, &mut rng);
        let fully = q
            .relations
            .iter()
            .filter(|r| cat.cached_fraction(r.id) == 1.0)
            .count();
        assert_eq!(fully, 5);
    }

    #[test]
    fn star_query_edges_touch_hub() {
        let q = star_query(5, MODERATE_SEL);
        assert_eq!(q.edges.len(), 4);
        assert!(q.edges.iter().all(|e| e.a == RelId(0)));
    }

    #[test]
    fn benchmark_selectivities_imply_keys() {
        // MODERATE_SEL is exactly 1/10,000: every chain relation is keyed.
        assert!(ten_way().relations.iter().all(|r| r.key));
        // HISEL_SEL = 2e-5 < 1e-4 also qualifies.
        assert!(ten_way_hisel().relations.iter().all(|r| r.key));
        assert!(star_query(4, MODERATE_SEL).relations.iter().all(|r| r.key));
    }

    #[test]
    fn loose_selectivity_drops_the_key() {
        // 1e-3 > 1/10,000: a join result can exceed one base relation,
        // so no relation on such an edge may claim the key property.
        let q = chain_query(3, 1e-3);
        assert!(q.relations.iter().all(|r| !r.key));
        // A single-relation "chain" has no edges, hence no key evidence.
        let lone = chain_query(1, MODERATE_SEL);
        assert!(!lone.relations[0].key);
    }

    #[test]
    fn load_utilization_levels_match_paper_intent() {
        // §4.2.2: 40 req/s ≈ 50%, 60 ≈ 76%, 70 ≈ 90% utilization.
        let u40 = load_utilization(40.0, 11.8);
        let u60 = load_utilization(60.0, 11.8);
        let u70 = load_utilization(70.0, 11.8);
        assert!((0.4..0.6).contains(&u40), "{u40}");
        assert!((0.6..0.85).contains(&u60), "{u60}");
        assert!((0.75..0.95).contains(&u70), "{u70}");
    }
}

#[cfg(test)]
mod spj_tests {
    use super::*;
    use csqp_catalog::{Estimator, SystemConfig};

    #[test]
    fn spj_query_applies_selections() {
        let q = spj_query(4, MODERATE_SEL, 0.1, 2);
        assert!((q.selection[0] - 0.1).abs() < 1e-12);
        assert!((q.selection[1] - 1.0).abs() < 1e-12);
        assert!((q.selection[2] - 0.1).abs() < 1e-12);
        let cfg = SystemConfig::default();
        let est = Estimator::new(&q, &cfg);
        // Two 10% selections shrink the final result by 100x.
        assert_eq!(est.tuples_int(q.all_rels()), 100);
    }
}
