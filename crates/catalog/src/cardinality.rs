//! Cardinality and size estimation over join subtrees.
//!
//! The estimator implements the classic independence model: the cardinality
//! of joining two sub-results is `sel × |L| × |R|` where `sel` is the
//! product of the selectivities of all join edges crossing the split
//! (edges within a side were already applied when that side was formed).
//! When no edge crosses, the join is a Cartesian product and `sel = 1` —
//! which is how the optimizer "knows" co-located but non-joinable relations
//! must not be joined (§4.3.1: a Cartesian product of two benchmark
//! relations would be millions of pages).
//!
//! With the paper's *moderate* selectivity (1e-4 between 10k-tuple
//! relations) every connected sub-chain has exactly 10,000 tuples, so "the
//! result of a join … is the size and cardinality of one base relation"
//! (§3.3) holds by construction.

use crate::config::SystemConfig;
use crate::query::{QuerySpec, RelSet};
use crate::schema::pages_for;

/// Estimates cardinalities, widths and page counts of query sub-results.
#[derive(Debug, Clone)]
pub struct Estimator<'q> {
    query: &'q QuerySpec,
    page_size: u32,
}

impl<'q> Estimator<'q> {
    /// Build an estimator for `query` under `config`.
    pub fn new(query: &'q QuerySpec, config: &SystemConfig) -> Estimator<'q> {
        Estimator {
            query,
            page_size: config.page_size,
        }
    }

    /// The query this estimator reads statistics from.
    pub fn query(&self) -> &'q QuerySpec {
        self.query
    }

    /// Estimated tuple count of the sub-result covering exactly `rels`,
    /// with all selections and all internal join edges applied.
    pub fn tuples(&self, rels: RelSet) -> f64 {
        let mut card = 1.0;
        for rel in rels.iter() {
            let r = &self.query.relations[rel.index()];
            card *= r.tuples as f64 * self.query.selection[rel.index()];
        }
        for e in &self.query.edges {
            if rels.contains(e.a) && rels.contains(e.b) {
                card *= e.selectivity;
            }
        }
        card
    }

    /// Tuple width of any sub-result: intermediate results are projected to
    /// the (uniform) base tuple width (§3.3).
    // Modeling assumption, not an error path: every workload generator
    // produces uniform-width relations (the paper's benchmark schema), and
    // a mixed-width query has no defined width model here to fall back to.
    #[allow(clippy::expect_used)]
    pub fn tuple_bytes(&self, _rels: RelSet) -> u32 {
        self.query
            .uniform_tuple_bytes()
            .expect("benchmark queries have uniform tuple width")
    }

    /// Estimated page count of the sub-result covering `rels`.
    pub fn pages(&self, rels: RelSet) -> f64 {
        let t = self.tuples(rels);
        if t <= 0.0 {
            return 0.0;
        }
        let per_page = (self.page_size / self.tuple_bytes(rels)) as f64;
        (t / per_page).ceil()
    }

    /// Integer page count (rounded estimate) — what the engine materializes.
    pub fn pages_int(&self, rels: RelSet) -> u64 {
        pages_for(
            self.tuples_int(rels),
            self.tuple_bytes(rels),
            self.page_size,
        )
    }

    /// Integer tuple count (rounded estimate).
    pub fn tuples_int(&self, rels: RelSet) -> u64 {
        crate::num::sat_u64(self.tuples(rels).round())
    }

    /// Selectivity applied when sub-results `left` and `right` are joined:
    /// the product over crossing edges (1.0 for a Cartesian product).
    pub fn join_selectivity(&self, left: RelSet, right: RelSet) -> f64 {
        debug_assert!(left.is_disjoint(right));
        self.query.cross_selectivity(left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelId;
    use crate::query::JoinEdge;
    use crate::schema::Relation;

    fn chain(n: u32, sel: f64) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: sel,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn set(ids: &[u32]) -> RelSet {
        ids.iter()
            .fold(RelSet::EMPTY, |s, &i| s.union(RelSet::single(RelId(i))))
    }

    #[test]
    fn moderate_chain_is_size_preserving() {
        // §3.3: joining two equal-sized relations yields one relation's
        // size, for every prefix of the chain.
        let q = chain(10, 1e-4);
        let cfg = SystemConfig::default();
        let est = Estimator::new(&q, &cfg);
        for k in 1..=10u32 {
            let rels = set(&(0..k).collect::<Vec<_>>());
            assert!(
                (est.tuples(rels) - 10_000.0).abs() < 1e-6,
                "chain of {k}: {}",
                est.tuples(rels)
            );
            assert_eq!(est.pages_int(rels), 250);
        }
    }

    #[test]
    fn hisel_chain_shrinks() {
        // HiSel (§5.2): 20% of each input's tuples participate, i.e. a
        // 2-way result of 2,000 tuples -> selectivity 2e-5.
        let q = chain(3, 2e-5);
        let cfg = SystemConfig::default();
        let est = Estimator::new(&q, &cfg);
        assert!((est.tuples(set(&[0, 1])) - 2_000.0).abs() < 1e-9);
        assert!((est.tuples(set(&[0, 1, 2])) - 400.0).abs() < 1e-9);
        assert_eq!(est.pages_int(set(&[0, 1])), 50);
    }

    #[test]
    fn cartesian_product_explodes() {
        let q = chain(3, 1e-4);
        let cfg = SystemConfig::default();
        let est = Estimator::new(&q, &cfg);
        // R0 x R2: no edge -> 10^8 tuples, ~2.44M pages.
        let cross = set(&[0, 2]);
        assert!((est.tuples(cross) - 1e8).abs() < 1.0);
        assert!(est.pages(cross) > 2e6);
        assert_eq!(est.join_selectivity(set(&[0]), set(&[2])), 1.0);
    }

    #[test]
    fn selection_scales_cardinality() {
        let q = chain(2, 1e-4).with_selection(RelId(0), 0.1);
        let cfg = SystemConfig::default();
        let est = Estimator::new(&q, &cfg);
        assert!((est.tuples(set(&[0])) - 1_000.0).abs() < 1e-9);
        assert!((est.tuples(set(&[0, 1])) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn join_selectivity_crossing_edges_only() {
        let q = chain(4, 1e-4);
        let cfg = SystemConfig::default();
        let est = Estimator::new(&q, &cfg);
        // Split {0,1} | {2,3}: only edge 1-2 crosses.
        assert!((est.join_selectivity(set(&[0, 1]), set(&[2, 3])) - 1e-4).abs() < 1e-16);
    }
}
