//! Base relations and their statistics.

use crate::ids::RelId;

/// A base relation with the statistics the cost model and engine need.
///
/// The paper's benchmark relations have 10,000 tuples of 100 bytes each
/// (§3.3); with 4096-byte pages that is 40 tuples per page and exactly 250
/// pages per relation — the page counts quoted throughout §4 (500 pages for
/// two relations, 2500 for ten) follow from this.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Dense relation id.
    pub id: RelId,
    /// Human-readable name (used in plan printouts).
    pub name: String,
    /// Number of tuples.
    pub tuples: u64,
    /// Width of one tuple in bytes.
    pub tuple_bytes: u32,
    /// Whether the join attribute of this relation is a declared unary
    /// key: no two tuples share a join-attribute value. A key is what
    /// makes the bound analyzer's key-join rule sound (a join on the key
    /// side emits at most one tuple per tuple of the other side), so
    /// declaring it on a relation that does not satisfy it is an error
    /// the `bound-key-unsound` audit catches.
    pub key: bool,
}

impl Relation {
    /// Create a relation with the paper's benchmark statistics
    /// (10,000 tuples × 100 bytes). No key is declared; workload
    /// generators add declarations where §3.3's selectivities imply them.
    pub fn benchmark(id: RelId, name: impl Into<String>) -> Relation {
        Relation {
            id,
            name: name.into(),
            tuples: 10_000,
            tuple_bytes: 100,
            key: false,
        }
    }

    /// The same relation with the join attribute declared a unary key.
    pub fn with_key(mut self) -> Relation {
        self.key = true;
        self
    }

    /// Whole tuples fitting in one page of `page_size` bytes.
    ///
    /// Tuples never span pages (the paper's page counts imply this).
    #[inline]
    pub fn tuples_per_page(&self, page_size: u32) -> u64 {
        let per = (page_size / self.tuple_bytes) as u64;
        assert!(per > 0, "tuple wider than a page");
        per
    }

    /// Number of pages occupied by this relation.
    #[inline]
    pub fn pages(&self, page_size: u32) -> u64 {
        pages_for(self.tuples, self.tuple_bytes, page_size)
    }
}

/// Pages needed for `tuples` tuples of `tuple_bytes` bytes in `page_size`
/// pages, tuples not spanning pages. Zero tuples occupy zero pages.
///
/// Panics on a tuple wider than a page (or a zero tuple width). Callers
/// holding *untrusted* statistics — anything decoded off the wire — must
/// use [`try_pages_for`] and surface a typed error instead.
#[inline]
pub fn pages_for(tuples: u64, tuple_bytes: u32, page_size: u32) -> u64 {
    match try_pages_for(tuples, tuple_bytes, page_size) {
        Some(p) => p,
        None => panic!("tuple wider than a page"),
    }
}

/// Checked [`pages_for`]: `None` when the statistics are hostile
/// (zero-width tuples, a tuple wider than a page) instead of panicking.
/// The serve boundary maps `None` to a typed `bound-overflow` error.
#[inline]
pub fn try_pages_for(tuples: u64, tuple_bytes: u32, page_size: u32) -> Option<u64> {
    if tuples == 0 {
        return Some(0);
    }
    if tuple_bytes == 0 {
        return None;
    }
    let per = u64::from(page_size / tuple_bytes);
    if per == 0 {
        return None;
    }
    Some(tuples.div_ceil(per))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_relation_is_250_pages() {
        let r = Relation::benchmark(RelId(0), "A");
        assert_eq!(r.tuples_per_page(4096), 40);
        assert_eq!(r.pages(4096), 250);
    }

    #[test]
    fn pages_round_up() {
        assert_eq!(pages_for(41, 100, 4096), 2);
        assert_eq!(pages_for(40, 100, 4096), 1);
        assert_eq!(pages_for(1, 100, 4096), 1);
        assert_eq!(pages_for(0, 100, 4096), 0);
    }

    #[test]
    #[should_panic(expected = "wider than a page")]
    fn oversized_tuple_rejected() {
        pages_for(1, 8192, 4096);
    }

    #[test]
    fn try_pages_for_rejects_hostile_stats_without_panicking() {
        assert_eq!(try_pages_for(1, 8192, 4096), None, "tuple wider than page");
        assert_eq!(try_pages_for(1, 0, 4096), None, "zero-width tuple");
        assert_eq!(try_pages_for(10, 100, 0), None, "zero page size");
        assert_eq!(try_pages_for(0, 0, 0), Some(0), "zero tuples need no page");
        assert_eq!(try_pages_for(41, 100, 4096), Some(2));
    }

    #[test]
    fn key_declaration_defaults_off_and_survives_with_key() {
        let r = Relation::benchmark(RelId(0), "A");
        assert!(!r.key);
        let k = r.with_key();
        assert!(k.key);
        assert_eq!(k.tuples, 10_000, "with_key changes nothing else");
    }
}
