//! Base relations and their statistics.

use crate::ids::RelId;

/// A base relation with the statistics the cost model and engine need.
///
/// The paper's benchmark relations have 10,000 tuples of 100 bytes each
/// (§3.3); with 4096-byte pages that is 40 tuples per page and exactly 250
/// pages per relation — the page counts quoted throughout §4 (500 pages for
/// two relations, 2500 for ten) follow from this.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Dense relation id.
    pub id: RelId,
    /// Human-readable name (used in plan printouts).
    pub name: String,
    /// Number of tuples.
    pub tuples: u64,
    /// Width of one tuple in bytes.
    pub tuple_bytes: u32,
}

impl Relation {
    /// Create a relation with the paper's benchmark statistics
    /// (10,000 tuples × 100 bytes).
    pub fn benchmark(id: RelId, name: impl Into<String>) -> Relation {
        Relation {
            id,
            name: name.into(),
            tuples: 10_000,
            tuple_bytes: 100,
        }
    }

    /// Whole tuples fitting in one page of `page_size` bytes.
    ///
    /// Tuples never span pages (the paper's page counts imply this).
    #[inline]
    pub fn tuples_per_page(&self, page_size: u32) -> u64 {
        let per = (page_size / self.tuple_bytes) as u64;
        assert!(per > 0, "tuple wider than a page");
        per
    }

    /// Number of pages occupied by this relation.
    #[inline]
    pub fn pages(&self, page_size: u32) -> u64 {
        pages_for(self.tuples, self.tuple_bytes, page_size)
    }
}

/// Pages needed for `tuples` tuples of `tuple_bytes` bytes in `page_size`
/// pages, tuples not spanning pages. Zero tuples occupy zero pages.
#[inline]
pub fn pages_for(tuples: u64, tuple_bytes: u32, page_size: u32) -> u64 {
    if tuples == 0 {
        return 0;
    }
    let per = (page_size / tuple_bytes) as u64;
    assert!(per > 0, "tuple wider than a page");
    tuples.div_ceil(per)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_relation_is_250_pages() {
        let r = Relation::benchmark(RelId(0), "A");
        assert_eq!(r.tuples_per_page(4096), 40);
        assert_eq!(r.pages(4096), 250);
    }

    #[test]
    fn pages_round_up() {
        assert_eq!(pages_for(41, 100, 4096), 2);
        assert_eq!(pages_for(40, 100, 4096), 1);
        assert_eq!(pages_for(1, 100, 4096), 1);
        assert_eq!(pages_for(0, 100, 4096), 0);
    }

    #[test]
    #[should_panic(expected = "wider than a page")]
    fn oversized_tuple_rejected() {
        pages_for(1, 8192, 4096);
    }
}
