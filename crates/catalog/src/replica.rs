//! Per-site catalog replication with bounded staleness.
//!
//! The base [`Catalog`] models the paper's single shared metadata store:
//! every site prices plans against one perfectly fresh view. A scaled
//! deployment cannot afford that — placements and cached-fraction state
//! change while queries are in flight, and each serving site sees those
//! changes only after a propagation delay. This module makes the delay
//! explicit and bounded:
//!
//! * a [`CatalogCoordinator`] owns the authoritative catalog and stamps
//!   every mutation with a monotonically increasing [`CatalogEpoch`],
//!   keeping a delta log so the catalog *as of any epoch* can be
//!   reconstructed;
//! * each site holds a [`CatalogReplica`] — an epoch-stamped
//!   [`CatalogSnapshot`] refreshed through an explicit, fault-injectable
//!   propagation step that rejects epoch regressions (a reordered
//!   delivery can never roll a replica backwards);
//! * [`ReplicatedCatalog`] composes the two with a staleness bound
//!   `max_epoch_lag`: a replica within the bound may price plans; one
//!   beyond it must take a typed degradation path (refresh-then-retry,
//!   HY/DS→QS downgrade, or reject) — the serving stack enforces that
//!   lattice, and `csqp_verify`'s drift pass audits it over a recorded
//!   [`DriftEvent`] trace.
//!
//! Everything here is pure, single-threaded state: the serving stack
//! drives propagation from its own seeded fault schedule, so two runs of
//! the same seed replay the identical drift history.

use std::fmt;

use crate::ids::{RelId, SiteId};
use crate::placement::Catalog;

/// A monotone catalog version number. Epoch 0 is the base catalog; every
/// coordinator mutation publishes the next epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CatalogEpoch(pub u64);

impl fmt::Display for CatalogEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl CatalogEpoch {
    /// The epoch of the base catalog, before any mutation.
    pub const ZERO: CatalogEpoch = CatalogEpoch(0);

    /// The epoch after this one.
    pub fn next(self) -> CatalogEpoch {
        CatalogEpoch(self.0 + 1)
    }

    /// How far this epoch trails `newer` (0 when equal or ahead).
    pub fn lag_behind(self, newer: CatalogEpoch) -> u64 {
        newer.0.saturating_sub(self.0)
    }
}

/// One catalog mutation, stamped into the coordinator's delta log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CatalogDelta {
    /// Move the primary copy of `rel` to `site`.
    Place {
        /// The relation whose primary copy moves.
        rel: RelId,
        /// The server now holding the primary copy.
        site: SiteId,
    },
    /// Declare a new client-cached fraction for `rel`.
    SetCachedFraction {
        /// The relation whose cache state changes.
        rel: RelId,
        /// The new cached fraction, in `[0, 1]`.
        fraction: f64,
    },
}

impl CatalogDelta {
    /// Apply this delta to `catalog`. Panics propagate from the
    /// underlying [`Catalog`] setters on out-of-range arguments; the
    /// coordinator is the only caller and never records an invalid delta.
    fn apply(&self, catalog: &mut Catalog) {
        match *self {
            CatalogDelta::Place { rel, site } => catalog.place(rel, site),
            CatalogDelta::SetCachedFraction { rel, fraction } => {
                catalog.set_cached_fraction(rel, fraction)
            }
        }
    }
}

/// An epoch-stamped view of the catalog: what a replica holds, and what
/// the coordinator hands out on refresh.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogSnapshot {
    /// The epoch this view is current as of.
    pub epoch: CatalogEpoch,
    /// The catalog contents at that epoch.
    pub catalog: Catalog,
}

/// The authoritative catalog plus its epoch counter and delta log.
///
/// Mutations go through [`place`](CatalogCoordinator::place) and
/// [`set_cached_fraction`](CatalogCoordinator::set_cached_fraction),
/// which apply the change, bump the epoch, and record the delta — the
/// `csqp-lint` rule `catalog-mutation` flags direct [`Catalog`] mutation
/// outside this API (or a justified allowlist) so drift state can never
/// bypass epoch accounting.
#[derive(Debug, Clone)]
pub struct CatalogCoordinator {
    base: Catalog,
    current: Catalog,
    epoch: CatalogEpoch,
    log: Vec<(CatalogEpoch, CatalogDelta)>,
}

impl CatalogCoordinator {
    /// A coordinator whose epoch-0 catalog is `base`.
    pub fn new(base: Catalog) -> CatalogCoordinator {
        CatalogCoordinator {
            current: base.clone(),
            base,
            epoch: CatalogEpoch::ZERO,
            log: Vec::new(),
        }
    }

    /// The current (newest) epoch.
    pub fn epoch(&self) -> CatalogEpoch {
        self.epoch
    }

    /// The authoritative catalog at the current epoch.
    pub fn catalog(&self) -> &Catalog {
        &self.current
    }

    /// Number of recorded mutations (== current epoch).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Publish a placement change; returns the new epoch.
    pub fn place(&mut self, rel: RelId, site: SiteId) -> CatalogEpoch {
        self.publish(CatalogDelta::Place { rel, site })
    }

    /// Publish a cached-fraction change; returns the new epoch.
    pub fn set_cached_fraction(&mut self, rel: RelId, fraction: f64) -> CatalogEpoch {
        self.publish(CatalogDelta::SetCachedFraction { rel, fraction })
    }

    fn publish(&mut self, delta: CatalogDelta) -> CatalogEpoch {
        delta.apply(&mut self.current);
        self.epoch = self.epoch.next();
        self.log.push((self.epoch, delta));
        self.epoch
    }

    /// Snapshot of the current epoch.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot {
            epoch: self.epoch,
            catalog: self.current.clone(),
        }
    }

    /// Reconstruct the catalog as of `epoch` (clamped to the current
    /// epoch) by replaying the delta log over the base catalog. This is
    /// what a torn or reordered delivery hands a replica: a genuine
    /// historical view, not a corrupted one.
    pub fn snapshot_at(&self, epoch: CatalogEpoch) -> CatalogSnapshot {
        let epoch = epoch.min(self.epoch);
        let mut catalog = self.base.clone();
        for (stamp, delta) in &self.log {
            if *stamp > epoch {
                break;
            }
            delta.apply(&mut catalog);
        }
        CatalogSnapshot { epoch, catalog }
    }
}

/// Why a replica refused a refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaError {
    /// The delivered snapshot is older than what the replica already
    /// holds — applying it would roll the epoch backwards.
    EpochRegress {
        /// The epoch the replica currently holds.
        have: CatalogEpoch,
        /// The (older) epoch of the rejected delivery.
        got: CatalogEpoch,
    },
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::EpochRegress { have, got } => {
                write!(
                    f,
                    "refresh would regress the replica epoch: have {have}, got {got}"
                )
            }
        }
    }
}

/// One site's epoch-stamped catalog view.
#[derive(Debug, Clone)]
pub struct CatalogReplica {
    site: SiteId,
    snapshot: CatalogSnapshot,
    poisoned: bool,
}

impl CatalogReplica {
    /// A replica for `site` holding `snapshot`.
    pub fn new(site: SiteId, snapshot: CatalogSnapshot) -> CatalogReplica {
        CatalogReplica {
            site,
            snapshot,
            poisoned: false,
        }
    }

    /// The site this replica serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The epoch this replica is current as of.
    pub fn epoch(&self) -> CatalogEpoch {
        self.snapshot.epoch
    }

    /// The replicated catalog contents.
    pub fn catalog(&self) -> &Catalog {
        &self.snapshot.catalog
    }

    /// How many epochs this replica trails `coordinator_epoch`.
    pub fn lag(&self, coordinator_epoch: CatalogEpoch) -> u64 {
        self.snapshot.epoch.lag_behind(coordinator_epoch)
    }

    /// True when the cached-fraction state is marked unusable (a
    /// poisoned propagation): plans must not price the client cache
    /// until a full refresh clears the mark.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Mark the cached-fraction state unusable.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Apply a delivered snapshot. A delivery older than the current
    /// epoch is rejected ([`ReplicaError::EpochRegress`]) and leaves the
    /// replica untouched; an equal-or-newer delivery is applied and
    /// clears any poison mark.
    pub fn refresh(&mut self, snapshot: CatalogSnapshot) -> Result<CatalogEpoch, ReplicaError> {
        if snapshot.epoch < self.snapshot.epoch {
            return Err(ReplicaError::EpochRegress {
                have: self.snapshot.epoch,
                got: snapshot.epoch,
            });
        }
        self.snapshot = snapshot;
        self.poisoned = false;
        Ok(self.snapshot.epoch)
    }
}

/// A coordinator plus one replica per server site, under a staleness
/// bound. Propagation is *explicit*: nothing refreshes until the caller
/// (the serving stack, the chaos harness, `csqp-check --catalog`) drives
/// it, which is what makes withheld, torn, and reordered deliveries
/// injectable and seeded runs reproducible.
#[derive(Debug, Clone)]
pub struct ReplicatedCatalog {
    coordinator: CatalogCoordinator,
    replicas: Vec<CatalogReplica>,
    max_epoch_lag: u64,
}

impl ReplicatedCatalog {
    /// Replicate `base` to every server site (`1..=num_servers`), all
    /// starting fresh at epoch 0, with staleness bound `max_epoch_lag`.
    pub fn new(base: Catalog, max_epoch_lag: u64) -> ReplicatedCatalog {
        let coordinator = CatalogCoordinator::new(base);
        let snapshot = coordinator.snapshot();
        let replicas = (1..=coordinator.catalog().num_servers())
            .map(|s| CatalogReplica::new(SiteId::server(s), snapshot.clone()))
            .collect();
        ReplicatedCatalog {
            coordinator,
            replicas,
            max_epoch_lag,
        }
    }

    /// The configured staleness bound.
    pub fn max_epoch_lag(&self) -> u64 {
        self.max_epoch_lag
    }

    /// The coordinator (authoritative catalog + epoch + log).
    pub fn coordinator(&self) -> &CatalogCoordinator {
        &self.coordinator
    }

    /// Publish a placement change through the coordinator.
    pub fn place(&mut self, rel: RelId, site: SiteId) -> CatalogEpoch {
        self.coordinator.place(rel, site)
    }

    /// Publish a cached-fraction change through the coordinator.
    pub fn set_cached_fraction(&mut self, rel: RelId, fraction: f64) -> CatalogEpoch {
        self.coordinator.set_cached_fraction(rel, fraction)
    }

    /// The replica for server `site`, if it exists.
    pub fn replica(&self, site: SiteId) -> Option<&CatalogReplica> {
        self.replica_index(site).map(|i| &self.replicas[i])
    }

    /// Mutable access to the replica for server `site` (the fault layer
    /// uses this to poison cached-fraction state).
    pub fn replica_mut(&mut self, site: SiteId) -> Option<&mut CatalogReplica> {
        self.replica_index(site).map(move |i| &mut self.replicas[i])
    }

    fn replica_index(&self, site: SiteId) -> Option<usize> {
        if site.is_server() && site.0 <= self.coordinator.catalog().num_servers() {
            Some(site.0 as usize - 1)
        } else {
            None
        }
    }

    /// Propagate the current coordinator snapshot to `site`. Returns the
    /// epoch the replica now holds; `None` for an unknown site.
    pub fn propagate(&mut self, site: SiteId) -> Option<CatalogEpoch> {
        let snapshot = self.coordinator.snapshot();
        let i = self.replica_index(site)?;
        // A full current snapshot can never regress.
        self.replicas[i].refresh(snapshot).ok()
    }

    /// Propagate the current snapshot to every replica.
    pub fn propagate_all(&mut self) {
        for s in 1..=self.coordinator.catalog().num_servers() {
            self.propagate(SiteId::server(s));
        }
    }

    /// Deliver the historical snapshot at `epoch` to `site` — the torn
    /// (partial) and reordered (stale) propagation paths. The replica's
    /// regression guard decides whether the delivery applies.
    pub fn deliver_at(
        &mut self,
        site: SiteId,
        epoch: CatalogEpoch,
    ) -> Option<Result<CatalogEpoch, ReplicaError>> {
        let snapshot = self.coordinator.snapshot_at(epoch);
        let i = self.replica_index(site)?;
        Some(self.replicas[i].refresh(snapshot))
    }

    /// How many epochs `site`'s replica trails the coordinator.
    pub fn lag(&self, site: SiteId) -> Option<u64> {
        self.replica(site).map(|r| r.lag(self.coordinator.epoch()))
    }

    /// True when `site`'s replica is within the staleness bound and its
    /// cache state is usable — i.e. it may price plans without taking
    /// the degradation path.
    pub fn within_bound(&self, site: SiteId) -> bool {
        self.replica(site).is_some_and(|r| {
            !r.is_poisoned() && r.lag(self.coordinator.epoch()) <= self.max_epoch_lag
        })
    }
}

/// What a served query did about its replica's staleness, in a recorded
/// drift trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftAction {
    /// Served against a within-bound replica, no degradation.
    Fresh,
    /// Served, but downgraded HY/DS → QS with the `stale-catalog`
    /// degrade reason.
    Degraded,
    /// Refused with a typed `stale-catalog` reject and a retry hint.
    Rejected,
}

/// One event in a drift trace: the serving stack (or a replay harness)
/// records these so `csqp_verify`'s drift-conformance pass can audit,
/// after the fact, that no plan was ever priced beyond the bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftEvent {
    /// The coordinator published a new epoch.
    Publish {
        /// The epoch just published.
        epoch: u64,
    },
    /// A snapshot delivery reached a replica.
    Refresh {
        /// The replica's site number.
        site: u32,
        /// The epoch the replica held before the delivery.
        from: u64,
        /// The epoch of the delivered snapshot.
        to: u64,
        /// Whether the replica applied it (a regression is recorded
        /// with `applied: false`; `applied: true` with `to < from` is
        /// the `catalog-epoch-regress` finding).
        applied: bool,
    },
    /// A replica's cached-fraction state was poisoned.
    Poison {
        /// The replica's site number.
        site: u32,
    },
    /// A query was planned against a replica.
    Serve {
        /// The replica's site number.
        site: u32,
        /// The replica epoch the plan was priced under.
        priced_epoch: u64,
        /// The coordinator epoch at serve time.
        coordinator_epoch: u64,
        /// The lag the server *recorded* for this serve (the verify
        /// pass recomputes it and flags disagreement).
        lag: u64,
        /// The degradation decision taken.
        action: DriftAction,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Catalog {
        let mut c = Catalog::new(2);
        c.place(RelId(0), SiteId::server(1));
        c.place(RelId(1), SiteId::server(2));
        c
    }

    #[test]
    fn epochs_are_monotone_and_logged() {
        let mut coord = CatalogCoordinator::new(base());
        assert_eq!(coord.epoch(), CatalogEpoch::ZERO);
        let e1 = coord.set_cached_fraction(RelId(0), 0.5);
        let e2 = coord.place(RelId(1), SiteId::server(1));
        assert_eq!((e1, e2), (CatalogEpoch(1), CatalogEpoch(2)));
        assert_eq!(coord.log_len(), 2);
        assert_eq!(coord.catalog().cached_fraction(RelId(0)), 0.5);
        assert_eq!(
            coord.catalog().try_primary_site(RelId(1)),
            Some(SiteId::server(1))
        );
    }

    #[test]
    fn snapshot_at_replays_history() {
        let mut coord = CatalogCoordinator::new(base());
        coord.set_cached_fraction(RelId(0), 0.25);
        coord.set_cached_fraction(RelId(0), 0.75);
        let old = coord.snapshot_at(CatalogEpoch(1));
        assert_eq!(old.epoch, CatalogEpoch(1));
        assert_eq!(old.catalog.cached_fraction(RelId(0)), 0.25);
        let now = coord.snapshot_at(CatalogEpoch(99));
        assert_eq!(now.epoch, CatalogEpoch(2), "clamped to the newest epoch");
        assert_eq!(now.catalog.cached_fraction(RelId(0)), 0.75);
    }

    #[test]
    fn replica_rejects_regressions_and_clears_poison() {
        let mut rc = ReplicatedCatalog::new(base(), 2);
        rc.set_cached_fraction(RelId(0), 0.5);
        rc.set_cached_fraction(RelId(0), 1.0);
        let s1 = SiteId::server(1);
        assert_eq!(rc.propagate(s1), Some(CatalogEpoch(2)));
        // A reordered (older) delivery is refused and changes nothing.
        let err = rc.deliver_at(s1, CatalogEpoch(1)).expect("known site");
        assert_eq!(
            err,
            Err(ReplicaError::EpochRegress {
                have: CatalogEpoch(2),
                got: CatalogEpoch(1),
            })
        );
        assert_eq!(
            rc.replica(s1).map(CatalogReplica::epoch),
            Some(CatalogEpoch(2))
        );
        // Poison marks cache state unusable; a full refresh clears it.
        rc.replica_mut(s1).expect("known site").poison();
        assert!(!rc.within_bound(s1));
        rc.set_cached_fraction(RelId(1), 0.25);
        rc.propagate(s1);
        assert!(rc.within_bound(s1));
    }

    #[test]
    fn lag_and_bound_track_the_coordinator() {
        let mut rc = ReplicatedCatalog::new(base(), 1);
        let s2 = SiteId::server(2);
        assert_eq!(rc.lag(s2), Some(0));
        assert!(rc.within_bound(s2));
        rc.set_cached_fraction(RelId(0), 0.5);
        assert_eq!(rc.lag(s2), Some(1));
        assert!(rc.within_bound(s2), "lag == bound is still within");
        rc.set_cached_fraction(RelId(0), 0.75);
        assert_eq!(rc.lag(s2), Some(2));
        assert!(!rc.within_bound(s2), "lag > bound must degrade");
        // A torn delivery (one epoch short of current) pulls it back in.
        let torn = rc.coordinator().epoch().0 - 1;
        rc.deliver_at(s2, CatalogEpoch(torn))
            .expect("known site")
            .expect("newer delivery applies");
        assert_eq!(rc.lag(s2), Some(1));
        assert!(rc.within_bound(s2));
    }

    #[test]
    fn unknown_sites_are_none_not_panics() {
        let mut rc = ReplicatedCatalog::new(base(), 1);
        assert!(rc.replica(SiteId::CLIENT).is_none());
        assert!(rc.replica(SiteId::server(9)).is_none());
        assert!(rc.propagate(SiteId::server(9)).is_none());
        assert!(rc.deliver_at(SiteId::CLIENT, CatalogEpoch(0)).is_none());
        assert_eq!(rc.lag(SiteId::server(3)), None);
        assert!(!rc.within_bound(SiteId::CLIENT));
    }
}
