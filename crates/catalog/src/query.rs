//! Query specifications: which relations are joined, along which edges,
//! with which selectivities.
//!
//! A [`QuerySpec`] is the *logical* query — the join graph. Plans (join
//! orders + site annotations) live in `csqp-core`; this crate only provides
//! the graph and the [`RelSet`] bitset used for cardinality estimation.

use crate::ids::RelId;
use crate::schema::Relation;

/// A set of relations, as a bitset over dense [`RelId`]s.
///
/// Supports up to 64 relations per query, far beyond the paper's 10-way
/// joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RelSet(pub u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// The singleton set `{rel}`.
    #[inline]
    pub fn single(rel: RelId) -> RelSet {
        assert!(rel.0 < 64, "RelSet supports at most 64 relations");
        RelSet(1 << rel.0)
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// True if `rel` is a member.
    #[inline]
    pub fn contains(self, rel: RelId) -> bool {
        rel.0 < 64 && (self.0 >> rel.0) & 1 == 1
    }

    /// True if the two sets share no relation.
    #[inline]
    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of member relations.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True for the empty set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over member relation ids in increasing order.
    pub fn iter(self) -> impl Iterator<Item = RelId> {
        (0..64u32)
            .filter(move |i| (self.0 >> i) & 1 == 1)
            .map(RelId)
    }
}

/// One edge of the join graph: an equijoin between two relations with the
/// given selectivity (result cardinality = sel × |L| × |R|).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinEdge {
    /// One endpoint.
    pub a: RelId,
    /// The other endpoint.
    pub b: RelId,
    /// Join selectivity in `(0, 1]`.
    pub selectivity: f64,
}

impl JoinEdge {
    /// True if this edge connects `x` and `y` (in either order).
    #[inline]
    pub fn connects(&self, x: RelId, y: RelId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

/// The logical query: relations, join edges, and optional per-relation
/// selection predicates.
///
/// The paper studies select-project-join queries (§2.1); projections are
/// folded into the convention that all intermediate tuples are projected to
/// the base tuple width (§3.3), and selections are per-relation predicates
/// with a selectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The relations referenced by the query (dense ids 0..n).
    pub relations: Vec<Relation>,
    /// The join graph.
    pub edges: Vec<JoinEdge>,
    /// Selection selectivity applied to each base relation (1.0 = no
    /// selection). Indexed by `RelId`.
    pub selection: Vec<f64>,
    /// Optional grouped aggregation of the query result (number of
    /// groups). The paper's footnote 4 notes that aggregations are
    /// annotated like selections; we support one over the final result.
    pub aggregate_groups: Option<u64>,
}

impl QuerySpec {
    /// Build a query over `relations` with the given edges and no
    /// selections.
    pub fn new(relations: Vec<Relation>, edges: Vec<JoinEdge>) -> QuerySpec {
        let n = relations.len();
        for (i, r) in relations.iter().enumerate() {
            assert_eq!(r.id.index(), i, "relation ids must be dense 0..n");
        }
        for e in &edges {
            assert!(
                e.a.index() < n && e.b.index() < n,
                "edge endpoint out of range"
            );
            assert!(e.a != e.b, "self-join edges are not supported");
            assert!(
                e.selectivity > 0.0 && e.selectivity <= 1.0,
                "selectivity must be in (0, 1]"
            );
        }
        QuerySpec {
            selection: vec![1.0; n],
            relations,
            edges,
            aggregate_groups: None,
        }
    }

    /// Aggregate the query result into `groups` groups.
    pub fn with_aggregate(mut self, groups: u64) -> QuerySpec {
        assert!(groups > 0, "need at least one group");
        self.aggregate_groups = Some(groups);
        self
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The set of all relations in the query.
    pub fn all_rels(&self) -> RelSet {
        self.relations
            .iter()
            .fold(RelSet::EMPTY, |s, r| s.union(RelSet::single(r.id)))
    }

    /// Set a selection predicate (selectivity) on one relation.
    pub fn with_selection(mut self, rel: RelId, selectivity: f64) -> QuerySpec {
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        self.selection[rel.index()] = selectivity;
        self
    }

    /// True if some join edge connects the two (disjoint) relation sets —
    /// i.e. joining them is not a Cartesian product.
    pub fn joinable(&self, left: RelSet, right: RelSet) -> bool {
        self.edges.iter().any(|e| {
            (left.contains(e.a) && right.contains(e.b))
                || (left.contains(e.b) && right.contains(e.a))
        })
    }

    /// Product of the selectivities of all edges internal to `rels` *that
    /// cross the `left`/`right` split* — the selectivity applied when the
    /// two subresults are joined.
    pub fn cross_selectivity(&self, left: RelSet, right: RelSet) -> f64 {
        self.edges
            .iter()
            .filter(|e| {
                (left.contains(e.a) && right.contains(e.b))
                    || (left.contains(e.b) && right.contains(e.a))
            })
            .map(|e| e.selectivity)
            .product()
    }

    /// The tuple width shared by all relations, if uniform (the paper's
    /// benchmark always is; intermediate results are projected to it).
    pub fn uniform_tuple_bytes(&self) -> Option<u32> {
        let w = self.relations.first()?.tuple_bytes;
        self.relations
            .iter()
            .all(|r| r.tuple_bytes == w)
            .then_some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_chain() -> QuerySpec {
        let rels = (0..3)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = vec![
            JoinEdge {
                a: RelId(0),
                b: RelId(1),
                selectivity: 1e-4,
            },
            JoinEdge {
                a: RelId(1),
                b: RelId(2),
                selectivity: 1e-4,
            },
        ];
        QuerySpec::new(rels, edges)
    }

    #[test]
    fn relset_basics() {
        let a = RelSet::single(RelId(0));
        let b = RelSet::single(RelId(3));
        let u = a.union(b);
        assert!(u.contains(RelId(0)) && u.contains(RelId(3)));
        assert!(!u.contains(RelId(1)));
        assert_eq!(u.len(), 2);
        assert!(a.is_disjoint(b));
        assert!(!u.is_disjoint(a));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![RelId(0), RelId(3)]);
    }

    #[test]
    fn joinable_follows_edges() {
        let q = three_chain();
        let r0 = RelSet::single(RelId(0));
        let r1 = RelSet::single(RelId(1));
        let r2 = RelSet::single(RelId(2));
        assert!(q.joinable(r0, r1));
        assert!(q.joinable(r1, r2));
        assert!(!q.joinable(r0, r2), "R0-R2 is a Cartesian product");
        assert!(q.joinable(r0.union(r1), r2));
    }

    #[test]
    fn cross_selectivity_multiplies_crossing_edges() {
        let q = three_chain();
        let left = RelSet::single(RelId(0)).union(RelSet::single(RelId(2)));
        let right = RelSet::single(RelId(1));
        // Both edges cross the split.
        assert!((q.cross_selectivity(left, right) - 1e-8).abs() < 1e-20);
        // No edge crosses -> product over empty set = 1 (Cartesian).
        assert_eq!(
            q.cross_selectivity(RelSet::single(RelId(0)), RelSet::single(RelId(2))),
            1.0
        );
    }

    #[test]
    fn all_rels_and_uniform_width() {
        let q = three_chain();
        assert_eq!(q.all_rels().len(), 3);
        assert_eq!(q.uniform_tuple_bytes(), Some(100));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_rejected() {
        let rels = vec![Relation::benchmark(RelId(1), "A")];
        QuerySpec::new(rels, vec![]);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn zero_selectivity_rejected() {
        let rels = (0..2)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        QuerySpec::new(
            rels,
            vec![JoinEdge {
                a: RelId(0),
                b: RelId(1),
                selectivity: 0.0,
            }],
        );
    }
}
