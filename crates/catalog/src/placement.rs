//! Physical data placement and client-cache state.
//!
//! * Every relation's primary copy resides on exactly one server (no
//!   declustering, no replication — §3.2.1 and footnote 5).
//! * The client's disk acts as a cache holding a contiguous prefix of each
//!   relation (footnote 8: "contiguous regions of relations are cached").

use std::collections::BTreeMap;

use crate::ids::{RelId, SiteId};

/// Physical placement: primary-copy sites, cached fractions, topology size.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    num_servers: u32,
    /// Primary-copy server per relation.
    primary: BTreeMap<RelId, SiteId>,
    /// Fraction of each relation cached on the client disk, in `[0, 1]`.
    cached: BTreeMap<RelId, f64>,
}

impl Catalog {
    /// A catalog for a topology with one client and `num_servers` servers.
    pub fn new(num_servers: u32) -> Catalog {
        assert!(num_servers >= 1, "need at least one server");
        Catalog {
            num_servers,
            primary: BTreeMap::new(),
            cached: BTreeMap::new(),
        }
    }

    /// Number of servers (sites `1..=num_servers`).
    pub fn num_servers(&self) -> u32 {
        self.num_servers
    }

    /// All sites: the client followed by every server.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..=self.num_servers).map(SiteId)
    }

    /// Place the primary copy of `rel` on `server`.
    ///
    /// # Panics
    /// Panics if `server` is the client ("No primary copies of relations
    /// are stored at the client", §3.2.1) or out of range.
    pub fn place(&mut self, rel: RelId, server: SiteId) {
        assert!(server.is_server(), "primary copies live on servers only");
        assert!(
            server.0 <= self.num_servers,
            "server {server} out of range (have {})",
            self.num_servers
        );
        self.primary.insert(rel, server);
    }

    /// The server holding the primary copy of `rel`.
    ///
    /// # Panics
    /// Panics if the relation was never placed — executing a query against
    /// an unplaced relation is a harness bug.
    pub fn primary_site(&self, rel: RelId) -> SiteId {
        *self
            .primary
            .get(&rel)
            .unwrap_or_else(|| panic!("relation {rel} has no primary copy"))
    }

    /// The server holding `rel`, or `None` when unplaced.
    pub fn try_primary_site(&self, rel: RelId) -> Option<SiteId> {
        self.primary.get(&rel).copied()
    }

    /// Set the fraction of `rel` cached on the client disk.
    pub fn set_cached_fraction(&mut self, rel: RelId, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "cached fraction must be in [0,1], got {fraction}"
        );
        if fraction == 0.0 {
            self.cached.remove(&rel);
        } else {
            self.cached.insert(rel, fraction);
        }
    }

    /// Fraction of `rel` cached at the client (0 when never set).
    pub fn cached_fraction(&self, rel: RelId) -> f64 {
        self.cached.get(&rel).copied().unwrap_or(0.0)
    }

    /// Number of pages of `rel` (out of `total_pages`) cached at the
    /// client: the *first* `⌊fraction·pages⌋` pages (contiguous prefix,
    /// footnote 8).
    pub fn cached_pages(&self, rel: RelId, total_pages: u64) -> u64 {
        let pages = crate::num::sat_u64((self.cached_fraction(rel) * total_pages as f64).floor());
        pages.min(total_pages)
    }

    /// Relations whose primary copy is on `server`.
    pub fn relations_at(&self, server: SiteId) -> Vec<RelId> {
        self.primary
            .iter()
            .filter(|(_, &s)| s == server)
            .map(|(&r, _)| r)
            .collect()
    }

    /// All placed relations with their servers, ordered by relation id.
    pub fn placements(&self) -> impl Iterator<Item = (RelId, SiteId)> + '_ {
        self.primary.iter().map(|(&r, &s)| (r, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_round_trip() {
        let mut c = Catalog::new(3);
        c.place(RelId(0), SiteId::server(1));
        c.place(RelId(1), SiteId::server(3));
        assert_eq!(c.primary_site(RelId(0)), SiteId::server(1));
        assert_eq!(c.primary_site(RelId(1)), SiteId::server(3));
        assert_eq!(c.try_primary_site(RelId(2)), None);
        assert_eq!(c.relations_at(SiteId::server(3)), vec![RelId(1)]);
        assert_eq!(c.sites().count(), 4);
    }

    #[test]
    #[should_panic(expected = "servers only")]
    fn client_cannot_hold_primary() {
        let mut c = Catalog::new(1);
        c.place(RelId(0), SiteId::CLIENT);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_server_rejected() {
        let mut c = Catalog::new(2);
        c.place(RelId(0), SiteId::server(3));
    }

    #[test]
    fn cached_prefix_pages() {
        let mut c = Catalog::new(1);
        assert_eq!(c.cached_fraction(RelId(0)), 0.0);
        c.set_cached_fraction(RelId(0), 0.25);
        assert_eq!(c.cached_pages(RelId(0), 250), 62); // floor(62.5)
        c.set_cached_fraction(RelId(0), 1.0);
        assert_eq!(c.cached_pages(RelId(0), 250), 250);
        c.set_cached_fraction(RelId(0), 0.0);
        assert_eq!(c.cached_pages(RelId(0), 250), 0);
    }

    #[test]
    #[should_panic(expected = "no primary copy")]
    fn unplaced_relation_panics() {
        let c = Catalog::new(1);
        c.primary_site(RelId(9));
    }
}
