//! Logical metadata for the client-server query processing study: relations
//! and their statistics, the join graph of a query, placement of primary
//! copies on servers, the client disk-cache state, the simulator parameters
//! of the paper's Table 2, Shapiro-style join memory allocation, and
//! epoch-stamped per-site catalog replication with bounded staleness
//! ([`replica`]).
//!
//! This crate is purely logical — it knows nothing about events, disks or
//! plans. Everything else (plans, cost model, engine) builds on it.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cardinality;
pub mod config;
pub mod ids;
pub mod memory;
pub mod num;
pub mod placement;
pub mod query;
pub mod replica;
pub mod schema;

pub use cardinality::Estimator;
pub use config::{BufAlloc, SystemConfig};
pub use ids::{RelId, SiteId};
pub use memory::{hybrid_hash_plan, join_memory, HashPlan};
pub use num::sat_u64;
pub use placement::Catalog;
pub use query::{JoinEdge, QuerySpec, RelSet};
pub use replica::{
    CatalogCoordinator, CatalogDelta, CatalogEpoch, CatalogReplica, CatalogSnapshot, DriftAction,
    DriftEvent, ReplicaError, ReplicatedCatalog,
};
pub use schema::{pages_for, try_pages_for, Relation};
