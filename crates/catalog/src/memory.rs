//! Join memory allocation and hybrid-hash partition planning, after
//! Shapiro \[Sha86\] as used by the paper (§3.2.2):
//!
//! * **Maximum allocation** lets the hash table for the inner relation be
//!   built entirely in main memory: `⌈F·N⌉` frames for an `N`-page inner.
//! * **Minimum allocation** reserves `⌈F·√N⌉` frames and requires the inner
//!   and outer relations to be split into partitions, all but one of which
//!   are written to and re-read from temporary storage.

use crate::config::{BufAlloc, SystemConfig};

/// How a hybrid-hash join will lay out a given inner relation in a given
/// amount of memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashPlan {
    /// Buffer frames granted to the join.
    pub mem_frames: u64,
    /// Number of spilled partitions (0 = fully in-memory join).
    pub spill_partitions: u64,
    /// Inner pages held resident in partition 0 (never spilled).
    pub resident_inner_pages: u64,
    /// Inner pages written to temporary storage.
    pub spilled_inner_pages: u64,
    /// Size of each spilled inner partition, in pages (last may be short).
    pub partition_pages: u64,
}

impl HashPlan {
    /// Fraction of the input that stays resident (applies to the outer
    /// relation too, under uniform hashing).
    pub fn resident_fraction(&self, inner_pages: u64) -> f64 {
        if inner_pages == 0 {
            1.0
        } else {
            self.resident_inner_pages as f64 / inner_pages as f64
        }
    }
}

/// Buffer frames granted to a join over an `inner_pages`-page build input
/// under the configured allocation policy.
pub fn join_memory(config: &SystemConfig, inner_pages: u64) -> u64 {
    let f = config.fudge;
    match config.buf_alloc {
        BufAlloc::Max => crate::num::sat_u64((f * inner_pages as f64).ceil()) + 1,
        BufAlloc::Min => crate::num::sat_u64((f * (inner_pages as f64).sqrt()).ceil()),
    }
    .max(3) // always at least in/out/work frames
}

/// Plan a hybrid-hash join of an `inner_pages`-page build input into
/// `mem_frames` frames with fudge factor `f`.
///
/// Follows Shapiro's hybrid hash: partition 0 is kept resident with
/// `mem_frames − B` frames (one output frame per spilled partition), and
/// `B` is the smallest partition count for which every spilled partition's
/// hash table fits in memory when re-read.
pub fn hybrid_hash_plan(inner_pages: u64, mem_frames: u64, f: f64) -> HashPlan {
    assert!(f >= 1.0, "fudge factor must be >= 1");
    assert!(mem_frames >= 3, "a join needs at least 3 frames");
    if (inner_pages as f64) * f <= mem_frames as f64 {
        return HashPlan {
            mem_frames,
            spill_partitions: 0,
            resident_inner_pages: inner_pages,
            spilled_inner_pages: 0,
            partition_pages: 0,
        };
    }
    // Find the smallest B such that the spilled partitions fit on re-read.
    // Integer rounding can make the exact fit unattainable at the minimum
    // allocation boundary (e.g. 11 pages into 4 frames); one frame of slack
    // is allowed there — a real system would recursively partition, and at
    // our scales the modeling difference is below one page of I/O.
    //
    // The scan starts at a sound lower bound rather than at 1: any fit
    // needs `ceil(spilled/b) * f <= mem_frames`, and spilled volume only
    // grows with B, so `b >= spilled(B=1) * f / mem_frames` is necessary.
    // Without the jump-start the scan is linear in `mem_frames`, which for
    // the Cartesian-product intermediates a random plan walk can produce
    // (u64-saturated page counts, billions of granted frames) turns one
    // cost evaluation into seconds of spinning.
    let spilled_at_min_b = {
        let resident = crate::num::sat_u64(((mem_frames - 1) as f64 / f).floor());
        inner_pages - resident.min(inner_pages)
    };
    let b_lo =
        crate::num::sat_u64((spilled_at_min_b as f64 * f / mem_frames as f64).floor()).max(1);
    if let (Some(fit), _) = scan_partition_counts(inner_pages, mem_frames, f, b_lo) {
        return fit;
    }
    // No exact fit above the bound: by the bound's derivation no B fits at
    // all, so fall back to the full scan purely to reproduce the original
    // slack-fallback choice over every split. This only happens at small
    // frame counts, where the scan is cheap.
    let (fit, fallback) = scan_partition_counts(inner_pages, mem_frames, f, 1);
    // Invariant, not an error path: with `b_start == 1` and
    // `mem_frames >= 3` (asserted above) the scan always produces at least
    // one candidate split.
    #[allow(clippy::expect_used)]
    fit.or(fallback)
        .expect("mem_frames >= 3 guarantees at least one candidate split")
}

/// Scan partition counts `b_start..mem_frames` for the smallest exact-fit
/// split (first return slot); when none fits, the second slot carries the
/// most even split seen (the documented one-frame-slack fallback).
fn scan_partition_counts(
    inner_pages: u64,
    mem_frames: u64,
    f: f64,
    b_start: u64,
) -> (Option<HashPlan>, Option<HashPlan>) {
    let mut fallback: Option<HashPlan> = None;
    for b in b_start..mem_frames {
        let resident_frames = mem_frames - b;
        let resident_pages = crate::num::sat_u64((resident_frames as f64 / f).floor());
        let resident_pages = resident_pages.min(inner_pages);
        let spilled = inner_pages - resident_pages;
        if spilled == 0 {
            return (
                Some(HashPlan {
                    mem_frames,
                    spill_partitions: 0,
                    resident_inner_pages: inner_pages,
                    spilled_inner_pages: 0,
                    partition_pages: 0,
                }),
                None,
            );
        }
        let part = spilled.div_ceil(b);
        let plan = HashPlan {
            mem_frames,
            spill_partitions: b,
            resident_inner_pages: resident_pages,
            spilled_inner_pages: spilled,
            partition_pages: part,
        };
        if (part as f64) * f <= mem_frames as f64 {
            return (Some(plan), None);
        }
        // Track the most even split seen as the slack fallback.
        match &fallback {
            Some(best) if best.partition_pages <= part => {}
            _ => fallback = Some(plan),
        }
    }
    (None, fallback)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The pre-jump-start planner: scan every partition count from 1.
    fn reference_plan(inner: u64, m: u64, f: f64) -> HashPlan {
        if (inner as f64) * f <= m as f64 {
            return hybrid_hash_plan(inner, m, f);
        }
        let (fit, fallback) = scan_partition_counts(inner, m, f, 1);
        fit.or(fallback).expect("at least one candidate split")
    }

    #[test]
    fn jump_start_matches_full_scan() {
        // The lower-bound jump-start must be behavior-preserving: sweep a
        // dense grid of (inner, frames) including the no-exact-fit slack
        // boundary cases, and compare against the scan-from-1 reference.
        for inner in 1..200u64 {
            for m in 3..48u64 {
                for f in [1.0, 1.2, 1.7] {
                    assert_eq!(
                        hybrid_hash_plan(inner, m, f),
                        reference_plan(inner, m, f),
                        "inner={inner} m={m} f={f}"
                    );
                }
            }
        }
    }

    #[test]
    fn astronomical_inputs_plan_quickly() {
        // A random plan walk can hand the cost model Cartesian-product
        // intermediates whose page counts saturate u64; planning the join
        // must stay O(1)-ish, not scan billions of frame counts.
        let f = 1.2;
        let inner = u64::MAX / 2;
        let mut cfg = SystemConfig::default();
        cfg.buf_alloc = BufAlloc::Min;
        let m = join_memory(&cfg, inner);
        let t = std::time::Instant::now();
        let plan = hybrid_hash_plan(inner, m, f);
        assert!(
            t.elapsed() < std::time::Duration::from_millis(200),
            "planner scanned instead of jumping: {:?}",
            t.elapsed()
        );
        assert_eq!(plan.resident_inner_pages + plan.spilled_inner_pages, inner);
        assert!(plan.spill_partitions > 0 && plan.spill_partitions < m);
        assert!(plan.partition_pages * plan.spill_partitions >= plan.spilled_inner_pages);
    }

    #[test]
    fn max_allocation_never_spills() {
        let mut cfg = SystemConfig::default();
        cfg.buf_alloc = BufAlloc::Max;
        let m = join_memory(&cfg, 250);
        assert!(m >= 300); // 1.2 * 250
        let plan = hybrid_hash_plan(250, m, cfg.fudge);
        assert_eq!(plan.spill_partitions, 0);
        assert_eq!(plan.resident_inner_pages, 250);
        assert_eq!(plan.spilled_inner_pages, 0);
    }

    #[test]
    fn min_allocation_for_benchmark_relation() {
        let cfg = SystemConfig::default();
        // F*sqrt(250) = 18.97... -> 19 frames.
        let m = join_memory(&cfg, 250);
        assert_eq!(m, 19);
        let plan = hybrid_hash_plan(250, m, cfg.fudge);
        assert!(plan.spill_partitions > 0);
        // Nearly all of the inner spills: only a few pages stay resident.
        assert!(plan.resident_inner_pages < 10, "{plan:?}");
        assert_eq!(plan.resident_inner_pages + plan.spilled_inner_pages, 250);
        // Each spilled partition must fit on re-read.
        assert!((plan.partition_pages as f64) * cfg.fudge <= m as f64);
    }

    #[test]
    fn tiny_inner_fits_even_with_min_alloc() {
        let cfg = SystemConfig::default();
        let m = join_memory(&cfg, 2);
        let plan = hybrid_hash_plan(2, m, cfg.fudge);
        assert_eq!(plan.spill_partitions, 0);
    }

    #[test]
    fn minimum_frames_floor() {
        let cfg = SystemConfig::default();
        assert!(join_memory(&cfg, 0) >= 3);
        assert!(join_memory(&cfg, 1) >= 3);
    }

    proptest! {
        /// Shapiro's guarantee: with at least F*sqrt(N) frames, a
        /// single-level hybrid hash plan always exists, partitions fit on
        /// re-read, and page accounting is exact.
        #[test]
        fn hybrid_hash_plan_invariants(inner in 1u64..5_000) {
            let f = 1.2;
            let m = crate::num::sat_u64(((inner as f64).sqrt() * f).ceil());
            let m = m.max(3);
            let plan = hybrid_hash_plan(inner, m, f);
            prop_assert_eq!(
                plan.resident_inner_pages + plan.spilled_inner_pages,
                inner
            );
            if plan.spill_partitions > 0 {
                // Exact fit, or the documented one-frame slack at the
                // minimum-allocation boundary.
                prop_assert!((plan.partition_pages as f64) * f <= (m + 1) as f64 + f);
                prop_assert!(
                    plan.partition_pages * plan.spill_partitions
                        >= plan.spilled_inner_pages
                );
                prop_assert!(plan.spill_partitions < m);
            } else {
                prop_assert_eq!(plan.spilled_inner_pages, 0);
            }
        }

        /// More memory never increases the spilled volume.
        #[test]
        fn monotone_in_memory(inner in 10u64..2_000, extra in 0u64..50) {
            let f = 1.2;
            let m0 = crate::num::sat_u64(((inner as f64).sqrt() * f).ceil()).max(3);
            let a = hybrid_hash_plan(inner, m0, f);
            let b = hybrid_hash_plan(inner, m0 + extra, f);
            prop_assert!(b.spilled_inner_pages <= a.spilled_inner_pages);
        }
    }
}
