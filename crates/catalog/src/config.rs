//! The simulator parameters of the paper's Table 2, plus the calibrated
//! disk constants used by the optimizer's cost model.
//!
//! | Parameter  | Value | Description                                 |
//! |------------|-------|---------------------------------------------|
//! | Mips       | 50    | CPU speed (10^6 instructions per second)    |
//! | NumDisks   | 1     | number of disks on a site                   |
//! | DiskInst   | 5000  | instructions to read a page from disk       |
//! | PageSize   | 4096  | size of one data page (bytes)               |
//! | NetBw      | 100   | network bandwidth (Mbit/sec)                |
//! | MsgInst    | 20000 | instructions to send/receive a message      |
//! | PerSizeMI  | 12000 | instructions to send/receive 4096 bytes     |
//! | Display    | 0     | instructions to display a tuple             |
//! | Compare    | 2     | instructions to apply a predicate           |
//! | HashInst   | 9     | instructions to hash a tuple                |
//! | MoveInst   | 1     | instructions to copy 4 bytes                |
//! | BufAlloc   | min/max | buffer allocated to a join (Shapiro)      |

use serde::{Deserialize, Serialize};

/// Join buffer allocation policy, after Shapiro [Sha86] (§3.2.2, §4.1).
///
/// * `Max` lets the hash table for the inner relation be built entirely in
///   main memory (`⌈F·N⌉` frames for an `N`-page inner, fudge `F = 1.2`).
/// * `Min` reserves `⌈F·√N⌉` frames and forces the inner and outer to be
///   split into partitions spilled to temporary storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufAlloc {
    /// Minimum allocation: `⌈F·√N⌉` frames, partitions spill to disk.
    Min,
    /// Maximum allocation: inner hash table fully in memory.
    Max,
}

/// The complete system configuration (Table 2) plus the two calibrated
/// per-page disk costs the optimizer's cost model uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// CPU speed in millions of instructions per second (`Mips`).
    pub mips: u64,
    /// Number of disks on each site (`NumDisks`).
    pub num_disks: u32,
    /// CPU instructions charged per disk I/O request (`DiskInst`).
    pub disk_inst: u64,
    /// Size of one data page in bytes (`PageSize`).
    pub page_size: u32,
    /// Network bandwidth in Mbit/sec (`NetBw`).
    pub net_bw_mbit: u64,
    /// Fixed CPU instructions to send or receive one message (`MsgInst`).
    pub msg_inst: u64,
    /// CPU instructions to send or receive `page_size` bytes (`PerSizeMI`).
    pub per_size_mi: u64,
    /// CPU instructions to display one result tuple (`Display`).
    pub display_inst: u64,
    /// CPU instructions to apply a predicate to one tuple (`Compare`).
    pub compare_inst: u64,
    /// CPU instructions to hash one tuple (`HashInst`).
    pub hash_inst: u64,
    /// CPU instructions to copy 4 bytes in memory (`MoveInst`).
    pub move_inst: u64,
    /// Buffer allocation given to each join (`BufAlloc`).
    pub buf_alloc: BufAlloc,
    /// Hybrid-hash fudge factor `F` (Shapiro uses 1.2, §3.2.2).
    pub fudge: f64,
    /// Calibrated average sequential disk cost per page, in milliseconds.
    ///
    /// "The average performance of the disk model with these settings is
    /// roughly 3.5 msec per page for sequential I/O … these values were
    /// obtained by separate simulation runs to calibrate the cost model of
    /// the optimizer." (§4.1)
    pub disk_seq_page_ms: f64,
    /// Calibrated average random disk cost per page, in milliseconds (11.8
    /// in the paper).
    pub disk_rand_page_ms: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            mips: 50,
            num_disks: 1,
            disk_inst: 5_000,
            page_size: 4_096,
            net_bw_mbit: 100,
            msg_inst: 20_000,
            per_size_mi: 12_000,
            display_inst: 0,
            compare_inst: 2,
            hash_inst: 9,
            move_inst: 1,
            buf_alloc: BufAlloc::Min,
            fudge: 1.2,
            disk_seq_page_ms: 3.5,
            disk_rand_page_ms: 11.8,
        }
    }
}

impl SystemConfig {
    /// Seconds of CPU time for `instructions` at this site speed.
    #[inline]
    pub fn cpu_secs(&self, instructions: u64) -> f64 {
        instructions as f64 / (self.mips as f64 * 1e6)
    }

    /// Seconds of wire time for `bytes` at the configured bandwidth.
    #[inline]
    pub fn wire_secs(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / (self.net_bw_mbit as f64 * 1e6)
    }

    /// CPU instructions to send *or* receive a message of `bytes` bytes:
    /// the fixed `MsgInst` plus the size-dependent `PerSizeMI` prorated by
    /// page size.
    #[inline]
    pub fn msg_cpu_instr(&self, bytes: u64) -> u64 {
        self.msg_inst + (self.per_size_mi as f64 * bytes as f64 / self.page_size as f64) as u64
    }

    /// CPU instructions to copy one tuple of `tuple_bytes` bytes
    /// (`MoveInst` per 4 bytes).
    #[inline]
    pub fn move_tuple_instr(&self, tuple_bytes: u32) -> u64 {
        self.move_inst * (tuple_bytes as u64).div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2, asserted value by value — this is experiment T2.
    #[test]
    fn table2_defaults() {
        let c = SystemConfig::default();
        assert_eq!(c.mips, 50);
        assert_eq!(c.num_disks, 1);
        assert_eq!(c.disk_inst, 5000);
        assert_eq!(c.page_size, 4096);
        assert_eq!(c.net_bw_mbit, 100);
        assert_eq!(c.msg_inst, 20000);
        assert_eq!(c.per_size_mi, 12000);
        assert_eq!(c.display_inst, 0);
        assert_eq!(c.compare_inst, 2);
        assert_eq!(c.hash_inst, 9);
        assert_eq!(c.move_inst, 1);
        assert_eq!(c.buf_alloc, BufAlloc::Min);
        assert!((c.fudge - 1.2).abs() < 1e-12);
    }

    #[test]
    fn cpu_time_at_50_mips() {
        let c = SystemConfig::default();
        // 50 MIPS -> 20 ns per instruction.
        assert!((c.cpu_secs(1) - 20e-9).abs() < 1e-18);
        assert!((c.cpu_secs(5000) - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn wire_time_for_one_page() {
        let c = SystemConfig::default();
        // 4096 B at 100 Mbit/s = 327.68 microseconds.
        assert!((c.wire_secs(4096) - 327.68e-6).abs() < 1e-12);
    }

    #[test]
    fn message_cpu_scales_with_size() {
        let c = SystemConfig::default();
        assert_eq!(c.msg_cpu_instr(4096), 32_000);
        assert_eq!(c.msg_cpu_instr(0), 20_000);
        assert_eq!(c.msg_cpu_instr(2048), 26_000);
    }

    #[test]
    fn tuple_move_cost() {
        let c = SystemConfig::default();
        // 100-byte tuple -> 25 word copies.
        assert_eq!(c.move_tuple_instr(100), 25);
        // Rounds up for non-multiples of 4.
        assert_eq!(c.move_tuple_instr(5), 2);
    }

    #[test]
    fn serde_round_trip() {
        let c = SystemConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
