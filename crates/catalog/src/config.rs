//! The simulator parameters of the paper's Table 2, plus the calibrated
//! disk constants used by the optimizer's cost model.
//!
//! | Parameter  | Value | Description                                 |
//! |------------|-------|---------------------------------------------|
//! | Mips       | 50    | CPU speed (10^6 instructions per second)    |
//! | NumDisks   | 1     | number of disks on a site                   |
//! | DiskInst   | 5000  | instructions to read a page from disk       |
//! | PageSize   | 4096  | size of one data page (bytes)               |
//! | NetBw      | 100   | network bandwidth (Mbit/sec)                |
//! | MsgInst    | 20000 | instructions to send/receive a message      |
//! | PerSizeMI  | 12000 | instructions to send/receive 4096 bytes     |
//! | Display    | 0     | instructions to display a tuple             |
//! | Compare    | 2     | instructions to apply a predicate           |
//! | HashInst   | 9     | instructions to hash a tuple                |
//! | MoveInst   | 1     | instructions to copy 4 bytes                |
//! | BufAlloc   | min/max | buffer allocated to a join (Shapiro)      |

use csqp_json::{obj, Json, JsonError};

/// Join buffer allocation policy, after Shapiro \[Sha86\] (§3.2.2, §4.1).
///
/// * `Max` lets the hash table for the inner relation be built entirely in
///   main memory (`⌈F·N⌉` frames for an `N`-page inner, fudge `F = 1.2`).
/// * `Min` reserves `⌈F·√N⌉` frames and forces the inner and outer to be
///   split into partitions spilled to temporary storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufAlloc {
    /// Minimum allocation: `⌈F·√N⌉` frames, partitions spill to disk.
    Min,
    /// Maximum allocation: inner hash table fully in memory.
    Max,
}

/// The complete system configuration (Table 2) plus the two calibrated
/// per-page disk costs the optimizer's cost model uses.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// CPU speed in millions of instructions per second (`Mips`).
    pub mips: u64,
    /// Number of disks on each site (`NumDisks`).
    pub num_disks: u32,
    /// CPU instructions charged per disk I/O request (`DiskInst`).
    pub disk_inst: u64,
    /// Size of one data page in bytes (`PageSize`).
    pub page_size: u32,
    /// Network bandwidth in Mbit/sec (`NetBw`).
    pub net_bw_mbit: u64,
    /// Fixed CPU instructions to send or receive one message (`MsgInst`).
    pub msg_inst: u64,
    /// CPU instructions to send or receive `page_size` bytes (`PerSizeMI`).
    pub per_size_mi: u64,
    /// CPU instructions to display one result tuple (`Display`).
    pub display_inst: u64,
    /// CPU instructions to apply a predicate to one tuple (`Compare`).
    pub compare_inst: u64,
    /// CPU instructions to hash one tuple (`HashInst`).
    pub hash_inst: u64,
    /// CPU instructions to copy 4 bytes in memory (`MoveInst`).
    pub move_inst: u64,
    /// Buffer allocation given to each join (`BufAlloc`).
    pub buf_alloc: BufAlloc,
    /// Hybrid-hash fudge factor `F` (Shapiro uses 1.2, §3.2.2).
    pub fudge: f64,
    /// Calibrated average sequential disk cost per page, in milliseconds.
    ///
    /// "The average performance of the disk model with these settings is
    /// roughly 3.5 msec per page for sequential I/O … these values were
    /// obtained by separate simulation runs to calibrate the cost model of
    /// the optimizer." (§4.1)
    pub disk_seq_page_ms: f64,
    /// Calibrated average random disk cost per page, in milliseconds (11.8
    /// in the paper).
    pub disk_rand_page_ms: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            mips: 50,
            num_disks: 1,
            disk_inst: 5_000,
            page_size: 4_096,
            net_bw_mbit: 100,
            msg_inst: 20_000,
            per_size_mi: 12_000,
            display_inst: 0,
            compare_inst: 2,
            hash_inst: 9,
            move_inst: 1,
            buf_alloc: BufAlloc::Min,
            fudge: 1.2,
            disk_seq_page_ms: 3.5,
            disk_rand_page_ms: 11.8,
        }
    }
}

impl SystemConfig {
    /// Seconds of CPU time for `instructions` at this site speed.
    #[inline]
    pub fn cpu_secs(&self, instructions: u64) -> f64 {
        instructions as f64 / (self.mips as f64 * 1e6)
    }

    /// Seconds of wire time for `bytes` at the configured bandwidth.
    #[inline]
    pub fn wire_secs(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / (self.net_bw_mbit as f64 * 1e6)
    }

    /// CPU instructions to send *or* receive a message of `bytes` bytes:
    /// the fixed `MsgInst` plus the size-dependent `PerSizeMI` prorated by
    /// page size.
    #[inline]
    pub fn msg_cpu_instr(&self, bytes: u64) -> u64 {
        self.msg_inst
            + crate::num::sat_u64(self.per_size_mi as f64 * bytes as f64 / self.page_size as f64)
    }

    /// CPU instructions to copy one tuple of `tuple_bytes` bytes
    /// (`MoveInst` per 4 bytes).
    #[inline]
    pub fn move_tuple_instr(&self, tuple_bytes: u32) -> u64 {
        self.move_inst * (tuple_bytes as u64).div_ceil(4)
    }

    /// Serialize to a flat JSON object (the persistence format for
    /// experiment configurations).
    pub fn to_json(&self) -> String {
        obj(vec![
            ("mips", Json::from(self.mips)),
            ("num_disks", Json::from(self.num_disks)),
            ("disk_inst", Json::from(self.disk_inst)),
            ("page_size", Json::from(self.page_size)),
            ("net_bw_mbit", Json::from(self.net_bw_mbit)),
            ("msg_inst", Json::from(self.msg_inst)),
            ("per_size_mi", Json::from(self.per_size_mi)),
            ("display_inst", Json::from(self.display_inst)),
            ("compare_inst", Json::from(self.compare_inst)),
            ("hash_inst", Json::from(self.hash_inst)),
            ("move_inst", Json::from(self.move_inst)),
            (
                "buf_alloc",
                Json::from(match self.buf_alloc {
                    BufAlloc::Min => "min",
                    BufAlloc::Max => "max",
                }),
            ),
            ("fudge", Json::from(self.fudge)),
            ("disk_seq_page_ms", Json::from(self.disk_seq_page_ms)),
            ("disk_rand_page_ms", Json::from(self.disk_rand_page_ms)),
        ])
        .render()
    }

    /// Parse a configuration stored with [`SystemConfig::to_json`].
    pub fn from_json(json: &str) -> Result<SystemConfig, JsonError> {
        let doc = Json::parse(json)?;
        let u64_of = |k: &str| -> Result<u64, JsonError> {
            doc.field(k)?
                .as_u64()
                .ok_or_else(|| JsonError::decode(k, "expected a non-negative integer"))
        };
        let f64_of = |k: &str| -> Result<f64, JsonError> {
            doc.field(k)?
                .as_f64()
                .ok_or_else(|| JsonError::decode(k, "expected a number"))
        };
        let buf_alloc = match doc.field("buf_alloc")?.as_str() {
            Some("min") => BufAlloc::Min,
            Some("max") => BufAlloc::Max,
            _ => {
                return Err(JsonError::decode(
                    "buf_alloc",
                    "expected \"min\" or \"max\"",
                ))
            }
        };
        let u32_of = |k: &str| -> Result<u32, JsonError> {
            u32::try_from(u64_of(k)?).map_err(|_| JsonError::decode(k, "value out of u32 range"))
        };
        Ok(SystemConfig {
            mips: u64_of("mips")?,
            num_disks: u32_of("num_disks")?,
            disk_inst: u64_of("disk_inst")?,
            page_size: u32_of("page_size")?,
            net_bw_mbit: u64_of("net_bw_mbit")?,
            msg_inst: u64_of("msg_inst")?,
            per_size_mi: u64_of("per_size_mi")?,
            display_inst: u64_of("display_inst")?,
            compare_inst: u64_of("compare_inst")?,
            hash_inst: u64_of("hash_inst")?,
            move_inst: u64_of("move_inst")?,
            buf_alloc,
            fudge: f64_of("fudge")?,
            disk_seq_page_ms: f64_of("disk_seq_page_ms")?,
            disk_rand_page_ms: f64_of("disk_rand_page_ms")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2, asserted value by value — this is experiment T2.
    #[test]
    fn table2_defaults() {
        let c = SystemConfig::default();
        assert_eq!(c.mips, 50);
        assert_eq!(c.num_disks, 1);
        assert_eq!(c.disk_inst, 5000);
        assert_eq!(c.page_size, 4096);
        assert_eq!(c.net_bw_mbit, 100);
        assert_eq!(c.msg_inst, 20000);
        assert_eq!(c.per_size_mi, 12000);
        assert_eq!(c.display_inst, 0);
        assert_eq!(c.compare_inst, 2);
        assert_eq!(c.hash_inst, 9);
        assert_eq!(c.move_inst, 1);
        assert_eq!(c.buf_alloc, BufAlloc::Min);
        assert!((c.fudge - 1.2).abs() < 1e-12);
    }

    #[test]
    fn cpu_time_at_50_mips() {
        let c = SystemConfig::default();
        // 50 MIPS -> 20 ns per instruction.
        assert!((c.cpu_secs(1) - 20e-9).abs() < 1e-18);
        assert!((c.cpu_secs(5000) - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn wire_time_for_one_page() {
        let c = SystemConfig::default();
        // 4096 B at 100 Mbit/s = 327.68 microseconds.
        assert!((c.wire_secs(4096) - 327.68e-6).abs() < 1e-12);
    }

    #[test]
    fn message_cpu_scales_with_size() {
        let c = SystemConfig::default();
        assert_eq!(c.msg_cpu_instr(4096), 32_000);
        assert_eq!(c.msg_cpu_instr(0), 20_000);
        assert_eq!(c.msg_cpu_instr(2048), 26_000);
    }

    #[test]
    fn tuple_move_cost() {
        let c = SystemConfig::default();
        // 100-byte tuple -> 25 word copies.
        assert_eq!(c.move_tuple_instr(100), 25);
        // Rounds up for non-multiples of 4.
        assert_eq!(c.move_tuple_instr(5), 2);
    }

    #[test]
    fn json_round_trip() {
        let mut c = SystemConfig::default();
        let back = SystemConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(c, back);
        // The non-default BufAlloc arm survives too.
        c.buf_alloc = BufAlloc::Max;
        let back = SystemConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn json_rejects_bad_documents() {
        assert!(SystemConfig::from_json("{").is_err());
        assert!(SystemConfig::from_json("{}").is_err());
        let bad = SystemConfig::default()
            .to_json()
            .replace("\"min\"", "\"typo\"");
        assert!(SystemConfig::from_json(&bad).is_err());
    }
}
