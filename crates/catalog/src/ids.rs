//! Identifier newtypes shared across the workspace.

use std::fmt;

/// Identifies a base relation within a catalog.
///
/// Relation ids are dense (0..n) so they can index bitsets ([`crate::RelSet`])
/// and vectors directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifies a machine in the client-server topology.
///
/// By convention site 0 is the client at which queries are submitted and
/// displayed; sites `1..=num_servers` are servers holding primary copies.
/// (The study models a single client, §3.2.1.)
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The client site.
    pub const CLIENT: SiteId = SiteId(0);

    /// The n-th server (1-based).
    #[inline]
    pub fn server(n: u32) -> SiteId {
        assert!(n >= 1, "servers are numbered from 1");
        SiteId(n)
    }

    /// True for the client site.
    #[inline]
    pub fn is_client(self) -> bool {
        self.0 == 0
    }

    /// True for any server site.
    #[inline]
    pub fn is_server(self) -> bool {
        self.0 != 0
    }

    /// The id as a vector index (client = 0, server k = k).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_client() {
            write!(f, "client")
        } else {
            write!(f, "server{}", self.0)
        }
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_server_distinction() {
        assert!(SiteId::CLIENT.is_client());
        assert!(!SiteId::CLIENT.is_server());
        assert!(SiteId::server(3).is_server());
        assert_eq!(SiteId::server(3).index(), 3);
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn server_zero_rejected() {
        let _ = SiteId::server(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SiteId::CLIENT.to_string(), "client");
        assert_eq!(SiteId::server(2).to_string(), "server2");
        assert_eq!(RelId(5).to_string(), "R5");
    }
}
