//! Checked numeric conversions for derived counts.
//!
//! Bound and cost arithmetic converts floating-point estimates into
//! integer page, tuple, and frame counts all over the stack. A bare
//! `expr as u64` at every call site leaves the edge semantics — NaN,
//! negative intermediates, values past `u64::MAX` — implicit and
//! unreviewable, and a wrong edge case here silently corrupts a bound
//! the admission gate then trusts. `csqp-lint`'s `numeric-truncation`
//! rule forbids the rounded-cast spellings in the bound/cost crates
//! (`crates/verify`, `crates/cost`, `crates/catalog`) and routes every
//! conversion through this module, where the semantics are stated once.

/// Saturating `f64 → u64` conversion: NaN maps to 0, negatives clamp
/// to 0, values past `u64::MAX` clamp to `u64::MAX` — Rust's defined
/// float-to-int `as` semantics, relied on deliberately. Callers choose
/// the rounding (`.round()`, `.floor()`, `.ceil()`) explicitly before
/// converting; saturation is sound wherever the result is an upper
/// bound, since every representable actual is ≤ `u64::MAX`.
#[inline]
#[must_use]
pub fn sat_u64(x: f64) -> u64 {
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_cases_are_pinned() {
        assert_eq!(sat_u64(f64::NAN), 0);
        assert_eq!(sat_u64(-3.7), 0);
        assert_eq!(sat_u64(f64::NEG_INFINITY), 0);
        assert_eq!(sat_u64(f64::INFINITY), u64::MAX);
        assert_eq!(sat_u64(1e300), u64::MAX);
        assert_eq!(sat_u64(42.9), 42, "truncation, not rounding");
        assert_eq!(sat_u64(0.0), 0);
    }
}
