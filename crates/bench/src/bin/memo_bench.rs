//! `csqp-bench` — the pinned, seeded memo and simulator bench suites.
//!
//! ```text
//! cargo run --release --bin csqp-bench -- [--queries N] [--seed S]
//!     [--servers M] [--out PATH] [--min-speedup X]
//! cargo run --release --bin csqp-bench -- --sim [--queries N] [--seed S]
//!     [--servers M] [--out PATH] [--min-events-per-sec X]
//! ```
//!
//! **Memo mode** (default) draws a fixed `--queries` (default 1000) mix from a bounded pool of
//! (spec × policy × objective × cache-bucket) planning scenarios, then
//! times the two-step planning path twice over the identical mix:
//!
//! * **cold** — memo disabled: every query pays compile + full
//!   simulated-annealing site selection;
//! * **warm** — one shared memo table across the whole mix: the first
//!   occurrence of each distinct scenario misses and installs, every
//!   repeat hits.
//!
//! Emits `BENCH_optimizer.json` (cold plans/sec, warm plans/sec, memo
//! hit rate, speedup) so the optimizer-throughput trajectory is tracked
//! across PRs — ROADMAP's "continuous perf trajectory" item for the
//! planning path. `--min-speedup X` turns the warm/cold ratio into a
//! hard exit-code assertion (CI passes 5).
//!
//! Wall-clock time here is the measurement, never an experiment result:
//! plans produced under timing are additionally cross-checked
//! cold-vs-warm for byte equality, which is a correctness gate, not a
//! timing.
//!
//! **Sim mode** (`--sim`) times the discrete-event simulator itself: it
//! pre-plans a pinned set of benchmark queries (shapes × all three
//! policies, planning outside the timed loop), then replays `--queries`
//! seeded executions round-robin over those plans and reports kernel
//! events dispatched per wall-clock second. Emits `BENCH_sim.json` so
//! the simulator-throughput trajectory is tracked across PRs alongside
//! the planning path. Before any timing is reported, the first slice of
//! the mix is re-executed with identical seeds and must reproduce the
//! exact event counts and response times (determinism gate).
//! `--min-events-per-sec X` turns the rate into a hard exit-code
//! regression assertion for CI.

use std::process::ExitCode;
use std::time::Instant;

use csqp_catalog::{Catalog, QuerySpec, SiteId, SystemConfig};
use csqp_core::{CancelToken, Plan, Policy};
use csqp_cost::Objective;
use csqp_experiments::common::Scenario;
use csqp_experiments::run_query;
use csqp_json::{obj, Json};
use csqp_memo::{bucket_fraction, CacheBuckets, Env, MemoConfig, MemoTable};
use csqp_optimizer::{CompileTimeAssumption, MemoOutcome, OptConfig, TwoStepPlanner};
use csqp_simkernel::rng::SimRng;
use csqp_workload::{
    chain_query, random_placement, star_query, two_way, WorkloadSpec, MODERATE_SEL,
};

struct Args {
    queries: usize,
    seed: u64,
    servers: u32,
    /// Empty until resolved: defaults to `BENCH_optimizer.json` (memo
    /// mode) or `BENCH_sim.json` (`--sim`).
    out: String,
    min_speedup: Option<f64>,
    sim: bool,
    min_events_per_sec: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        queries: 1000,
        seed: 0xB_E7C4,
        servers: 4,
        out: String::new(),
        min_speedup: None,
        sim: false,
        min_events_per_sec: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut raw = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(format!("{name} needs an argument")))
        };
        match flag.as_str() {
            "--queries" => args.queries = num(&raw("--queries"), "--queries") as usize,
            "--seed" => args.seed = num(&raw("--seed"), "--seed"),
            "--servers" => args.servers = num(&raw("--servers"), "--servers") as u32,
            "--out" => args.out = raw("--out"),
            "--min-speedup" => {
                let v = raw("--min-speedup");
                args.min_speedup =
                    Some(v.parse::<f64>().unwrap_or_else(|_| {
                        die("--min-speedup needs a numeric argument".to_string())
                    }));
            }
            "--sim" => args.sim = true,
            "--min-events-per-sec" => {
                let v = raw("--min-events-per-sec");
                args.min_events_per_sec = Some(v.parse::<f64>().unwrap_or_else(|_| {
                    die("--min-events-per-sec needs a numeric argument".to_string())
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: csqp-bench [--queries N] [--seed S] [--servers M] \
                     [--out PATH] [--min-speedup X]\n       \
                     csqp-bench --sim [--queries N] [--seed S] [--servers M] \
                     [--out PATH] [--min-events-per-sec X]"
                );
                std::process::exit(0);
            }
            other => die(format!("unknown flag {other}")),
        }
    }
    if args.queries == 0 {
        die("--queries must be at least 1".to_string());
    }
    if args.servers == 0 {
        die("--servers must be at least 1".to_string());
    }
    if args.out.is_empty() {
        args.out = if args.sim {
            "BENCH_sim.json".to_string()
        } else {
            "BENCH_optimizer.json".to_string()
        };
    }
    args
}

fn num(v: &str, name: &str) -> u64 {
    v.parse::<u64>()
        .unwrap_or_else(|_| die(format!("{name} needs a numeric argument")))
}

fn die(msg: String) -> ! {
    eprintln!("csqp-bench: {msg}");
    std::process::exit(2)
}

/// One planning scenario from the bounded pool: everything the two-step
/// path needs, pre-built so the timed loop measures planning alone.
struct Cell {
    spec: WorkloadSpec,
    query: csqp_catalog::QuerySpec,
    catalog: Catalog,
    buckets: CacheBuckets,
    env: Env,
    planner: TwoStepPlanner,
}

/// The bounded scenario pool: every combination of a small spec set,
/// all three policies, all three objectives, and two cache states —
/// the repeated-workload shape a production memo exists for.
fn scenario_pool(servers: u32) -> Vec<Cell> {
    let specs = [
        WorkloadSpec::Chain {
            n: 3,
            selectivity: MODERATE_SEL,
        },
        WorkloadSpec::Chain {
            n: 5,
            selectivity: MODERATE_SEL,
        },
        WorkloadSpec::Star {
            n: 4,
            selectivity: MODERATE_SEL,
        },
        WorkloadSpec::Spj {
            n: 5,
            join_sel: MODERATE_SEL,
            selection: 0.2,
            every_k: 2,
        },
    ];
    let objectives = [
        Objective::Communication,
        Objective::ResponseTime,
        Objective::TotalCost,
    ];
    let mut pool = Vec::new();
    for spec in &specs {
        let query = spec.build();
        let topo = servers.min(spec.num_relations()).max(1);
        let env = Env {
            placement_seed: 0xC59D,
            num_servers: topo,
        };
        for policy in Policy::ALL {
            for objective in objectives {
                for bucket in [0u8, 4] {
                    let buckets = CacheBuckets::quantize(&vec![
                        bucket_fraction(bucket);
                        spec.num_relations() as usize
                    ]);
                    let mut catalog = Catalog::new(topo);
                    for (i, r) in query.relations.iter().enumerate() {
                        catalog.place(r.id, SiteId::server(1 + (i as u32 % topo)));
                    }
                    for (rel_index, fraction) in buckets.planning_fractions() {
                        if (rel_index as usize) < query.relations.len() {
                            catalog.set_cached_fraction(
                                query.relations[rel_index as usize].id,
                                fraction,
                            );
                        }
                    }
                    pool.push(Cell {
                        spec: spec.clone(),
                        query: query.clone(),
                        catalog,
                        buckets: buckets.clone(),
                        env,
                        planner: TwoStepPlanner {
                            policy,
                            objective,
                            config: OptConfig::fast(),
                        },
                    });
                }
            }
        }
    }
    pool
}

/// Plan one cell end to end (compile + site selection) against an
/// optional memo, returning the plan and whether site selection hit.
fn plan_cell(cell: &Cell, sys: &SystemConfig, memo: Option<&MemoTable>) -> (csqp_core::Plan, bool) {
    let guard = CancelToken::inert();
    let (compiled, _) = cell.planner.compile_memoized(
        &cell.spec,
        &cell.query,
        sys,
        CompileTimeAssumption::Centralized,
        cell.env,
        memo,
    );
    let (plan, outcome) = cell
        .planner
        .site_select_memoized(
            &cell.spec,
            &compiled,
            &cell.query,
            sys,
            &cell.catalog,
            &cell.buckets,
            cell.env,
            memo,
            &guard,
        )
        .unwrap_or_else(|r| die(format!("inert guard stopped planning: {r}")));
    (plan, outcome == MemoOutcome::Hit)
}

/// One simulator scenario: a benchmark query pre-planned under a policy
/// so the timed loop measures the discrete-event kernel alone.
struct SimCell {
    label: String,
    query: QuerySpec,
    catalog: Catalog,
    plan: Plan,
}

/// Build the pinned sim pool: benchmark shapes × all three policies,
/// each planned once (untimed) for response time over a seeded random
/// placement.
fn sim_pool(servers: u32, seed: u64, sys: &SystemConfig) -> Vec<SimCell> {
    let shapes: Vec<(&str, QuerySpec)> = vec![
        ("2-way", two_way()),
        ("chain-5", chain_query(5, MODERATE_SEL)),
        ("star-4", star_query(4, MODERATE_SEL)),
    ];
    let mut rng = SimRng::seed_from_u64(seed ^ 0x51D0);
    let mut cells = Vec::new();
    for (name, query) in shapes {
        let topo = servers.min(query.num_relations() as u32).max(1);
        let catalog = random_placement(&query, topo, &mut rng);
        for policy in Policy::ALL {
            let stats = run_query(
                &query,
                &catalog,
                sys,
                &[],
                policy,
                Objective::ResponseTime,
                &OptConfig::fast(),
                seed ^ cells.len() as u64,
            )
            .unwrap_or_else(|e| die(format!("sim pool planning failed for {name}: {e}")));
            cells.push(SimCell {
                label: format!("{name}/{}", policy.short()),
                query: query.clone(),
                catalog: catalog.clone(),
                plan: stats.plan,
            });
        }
    }
    cells
}

/// Per-execution seed: decorrelate replay index from the base seed.
fn sim_seed(base: u64, i: usize) -> u64 {
    base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// `--sim`: time `--queries` seeded executions round-robin over the
/// pinned plan pool and report kernel events dispatched per second.
fn run_sim(args: &Args) -> ExitCode {
    let sys = SystemConfig::default();
    let cells = sim_pool(args.servers, args.seed, &sys);
    println!(
        "csqp-bench --sim: {} executions over {} pre-planned scenarios (seed {:#x})",
        args.queries,
        cells.len(),
        args.seed
    );

    // Timed replay: planning already happened; this loop is simulator
    // bind + event dispatch only.
    let start = Instant::now();
    let mut total_events = 0u64;
    let mut digest = 0u64;
    let mut first_slice: Vec<(u64, u64)> = Vec::new();
    let probe = cells.len().min(args.queries);
    for i in 0..args.queries {
        let cell = &cells[i % cells.len()];
        let scenario = Scenario {
            query: &cell.query,
            catalog: &cell.catalog,
            sys: &sys,
            loads: &[],
        };
        let m = scenario.execute(&cell.plan, sim_seed(args.seed, i));
        let response_bits = m.response_secs().to_bits();
        total_events += m.events_handled;
        digest = digest.rotate_left(9) ^ m.events_handled ^ response_bits;
        if i < probe {
            first_slice.push((m.events_handled, response_bits));
        }
    }
    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);
    let events_per_sec = total_events as f64 / wall_secs;
    println!(
        "sim: {wall_secs:.3}s — {total_events} kernel events, {events_per_sec:.0} events/sec \
         ({:.0} events/run)",
        total_events as f64 / args.queries as f64
    );

    // Determinism gate before the rate is reported as a trajectory
    // point: replaying the first slice with identical seeds must
    // reproduce the exact event counts and response times.
    for (i, &(events, response_bits)) in first_slice.iter().enumerate() {
        let cell = &cells[i % cells.len()];
        let scenario = Scenario {
            query: &cell.query,
            catalog: &cell.catalog,
            sys: &sys,
            loads: &[],
        };
        let m = scenario.execute(&cell.plan, sim_seed(args.seed, i));
        if m.events_handled != events || m.response_secs().to_bits() != response_bits {
            eprintln!(
                "csqp-bench: FAIL sim replay #{i} ({}) diverged: {} events vs {events}",
                cell.label, m.events_handled
            );
            return ExitCode::FAILURE;
        }
    }
    println!("verified: first {probe} executions replay deterministically");

    let bench = obj(vec![
        ("bench", Json::from("csqp-bench sim suite")),
        ("seed", Json::from(args.seed)),
        ("runs", Json::from(args.queries as u64)),
        ("scenarios", Json::from(cells.len() as u64)),
        ("total_events", Json::from(total_events)),
        ("wall_secs", Json::from(wall_secs)),
        ("events_per_sec", Json::from(events_per_sec)),
        (
            "events_per_run",
            Json::from(total_events as f64 / args.queries as f64),
        ),
        ("digest", Json::from(format!("{digest:016x}"))),
    ]);
    match std::fs::write(&args.out, bench.render_pretty() + "\n") {
        Ok(()) => println!("wrote {}", args.out),
        Err(e) => {
            eprintln!("csqp-bench: FAIL writing {}: {e}", args.out);
            return ExitCode::FAILURE;
        }
    }

    if let Some(min) = args.min_events_per_sec {
        if events_per_sec < min {
            eprintln!(
                "csqp-bench: FAIL simulator throughput {events_per_sec:.0} events/sec below \
                 the {min} regression threshold"
            );
            return ExitCode::FAILURE;
        }
        println!("throughput {events_per_sec:.0} events/sec meets the {min} threshold");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.sim {
        return run_sim(&args);
    }
    let sys = SystemConfig::default();
    let pool = scenario_pool(args.servers);

    // The pinned mix: `--queries` draws from the pool by seeded index.
    let mut rng = SimRng::seed_from_u64(args.seed);
    let mix: Vec<usize> = (0..args.queries)
        .map(|_| rng.range(0, pool.len()))
        .collect();
    println!(
        "csqp-bench: {} queries over a pool of {} planning scenarios (seed {:#x})",
        args.queries,
        pool.len(),
        args.seed
    );

    // Cold pass: no memo, every query pays full planning.
    let start = Instant::now();
    let cold_plans: Vec<_> = mix
        .iter()
        .map(|&i| plan_cell(&pool[i], &sys, None).0)
        .collect();
    let cold_secs = start.elapsed().as_secs_f64().max(1e-9);
    let cold_rate = args.queries as f64 / cold_secs;
    println!("cold: {cold_secs:.3}s — {cold_rate:.0} plans/sec");

    // Warm pass: one shared table across the identical mix.
    let table = MemoTable::new(MemoConfig::default());
    let start = Instant::now();
    let mut warm_hits = 0u64;
    let warm_plans: Vec<_> = mix
        .iter()
        .map(|&i| {
            let (plan, hit) = plan_cell(&pool[i], &sys, Some(&table));
            if hit {
                warm_hits += 1;
            }
            plan
        })
        .collect();
    let warm_secs = start.elapsed().as_secs_f64().max(1e-9);
    let warm_rate = args.queries as f64 / warm_secs;
    let hit_rate = warm_hits as f64 / args.queries as f64;
    let speedup = warm_rate / cold_rate;
    println!(
        "warm: {warm_secs:.3}s — {warm_rate:.0} plans/sec, hit rate {:.1}%, speedup {speedup:.1}x",
        hit_rate * 100.0
    );

    // Correctness gate before any timing is reported as a win: warm
    // plans must be byte-identical to cold ones, query by query.
    for (i, (cold, warm)) in cold_plans.iter().zip(&warm_plans).enumerate() {
        if cold != warm {
            eprintln!("csqp-bench: FAIL query #{i} warm plan diverged from cold");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "verified: all {} warm plans byte-identical to cold",
        args.queries
    );

    let snap = table.snapshot();
    let bench = obj(vec![
        ("bench", Json::from("csqp-bench memo suite")),
        ("seed", Json::from(args.seed)),
        ("queries", Json::from(args.queries as u64)),
        ("pool", Json::from(pool.len() as u64)),
        ("cold_secs", Json::from(cold_secs)),
        ("cold_plans_per_sec", Json::from(cold_rate)),
        ("warm_secs", Json::from(warm_secs)),
        ("warm_plans_per_sec", Json::from(warm_rate)),
        ("hit_rate", Json::from(hit_rate)),
        ("speedup", Json::from(speedup)),
        ("memo_hits", Json::from(snap.hits)),
        ("memo_misses", Json::from(snap.misses)),
        ("memo_entries", Json::from(snap.entries)),
        ("memo_bytes", Json::from(snap.bytes)),
    ]);
    match std::fs::write(&args.out, bench.render_pretty() + "\n") {
        Ok(()) => println!("wrote {}", args.out),
        Err(e) => {
            eprintln!("csqp-bench: FAIL writing {}: {e}", args.out);
            return ExitCode::FAILURE;
        }
    }

    if let Some(min) = args.min_speedup {
        if speedup < min {
            eprintln!(
                "csqp-bench: FAIL warm/cold speedup {speedup:.2}x below the \
                 {min}x regression threshold"
            );
            return ExitCode::FAILURE;
        }
        println!("speedup {speedup:.1}x meets the {min}x threshold");
    }
    ExitCode::SUCCESS
}
