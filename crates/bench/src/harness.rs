//! Minimal criterion-compatible bench harness.
//!
//! The container building this workspace has no registry access, so the
//! bench targets cannot depend on the real `criterion` crate. This module
//! provides the small slice of its API the targets use — `Criterion`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a plain wall-clock timing loop. It reports mean
//! time-per-iteration; it does not do criterion's statistical analysis.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Entry point handed to each bench function (criterion-compatible).
#[derive(Debug)]
pub struct Criterion {
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure_budget: MEASURE_BUDGET,
        }
    }
}

/// Times a routine inside [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    mean: Option<Duration>,
    measure_budget: Duration,
}

impl Bencher {
    /// Time `routine`, storing the mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call, then a calibration pass to pick an
        // iteration count filling the measurement budget.
        std::hint::black_box(routine());
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measure_budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.mean = Some(start.elapsed() / iters);
    }
}

impl Criterion {
    /// Run `f` against a [`Bencher`] and print the measured mean.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean: None,
            measure_budget: self.measure_budget,
        };
        f(&mut b);
        match b.mean {
            Some(mean) => println!("bench {id:<40} {mean:>12.3?}/iter"),
            None => println!("bench {id:<40} (no measurement)"),
        }
        self
    }

    /// Accepted for criterion compatibility; this harness sizes its
    /// iteration count from the measurement budget instead.
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measure_budget = d;
        self
    }

    /// Accepted for criterion compatibility; warm-up here is the single
    /// untimed call [`Bencher::iter`] always makes.
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }
}

/// Define a bench group function that runs each target (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given bench groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
