//! Benchmark support: shared scenario builders for the criterion bench
//! targets in `benches/`. The bench targets regenerate each paper
//! table/figure (printing its series once) and then time a representative
//! unit of work so regressions in optimizer or engine performance are
//! visible.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod harness;

use csqp_catalog::{Catalog, SystemConfig};
use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_engine::ExecutionMetrics;
use csqp_experiments::common::Scenario;
use csqp_experiments::ExpContext;
use csqp_workload::{single_server_placement, two_way};

/// The context used by bench targets: fast optimizer preset, one
/// repetition (criterion supplies the repetitions).
pub fn bench_context() -> ExpContext {
    let mut ctx = ExpContext::fast();
    ctx.reps = 1;
    ctx
}

/// One cheap end-to-end unit: optimize + simulate the 2-way benchmark
/// query under a policy.
pub fn two_way_unit(policy: Policy, objective: Objective, seed: u64) -> ExecutionMetrics {
    let query = two_way();
    let catalog: Catalog = single_server_placement(&query);
    let sys = SystemConfig::default();
    let scenario = Scenario {
        query: &query,
        catalog: &catalog,
        sys: &sys,
        loads: &[],
    };
    scenario.optimize_and_run(policy, objective, &bench_context().opt, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_runs() {
        let m = two_way_unit(Policy::QueryShipping, Objective::Communication, 1);
        assert_eq!(m.pages_sent, 250);
    }
}
