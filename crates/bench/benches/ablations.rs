//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation prints a small before/after table (what the system does
//! with the mechanism on vs off) and times the "on" configuration:
//!
//! * **commute move** — the documented extension to the paper's move set:
//!   without it, the optimizer cannot flip the build side of a 2-way join;
//! * **controller-cache segments** — a single segment is what makes
//!   interleaved streams interfere (the engine's emergent contention);
//! * **elevator vs arrival order** — SCAN scheduling reduces head travel;
//! * **hybrid restart seeding** — pure-policy II starts are what
//!   guarantee hybrid-shipping never trails a pure policy.

// Bench targets get the same panic-on-broken-setup latitude as tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_bench::harness::Criterion;
use csqp_bench::{criterion_group, criterion_main};
use csqp_catalog::{SiteId, SystemConfig};
use csqp_core::Policy;
use csqp_cost::{CostModel, Objective};
use csqp_disk::{Disk, DiskAddr, DiskParams, DiskRequest, IoKind};
use csqp_optimizer::{OptConfig, Optimizer};
use csqp_simkernel::rng::SimRng;
use csqp_simkernel::SimTime;
use csqp_workload::{single_server_placement, two_way};

/// Serve one request synchronously; returns the completion time.
fn serve(d: &mut Disk<()>, now: SimTime, addr: u64, kind: IoKind) -> SimTime {
    let fin = d
        .submit(
            now,
            DiskRequest {
                addr: DiskAddr(addr),
                kind,
                token: (),
            },
        )
        .expect("idle");
    let (_, next) = d.finish_current(fin);
    assert!(next.is_none());
    fin
}

fn ablation_cache_segments(c: &mut Criterion) {
    // Two interleaved sequential read streams, 1 vs 4 cache segments.
    let run = |segments: usize| -> f64 {
        let mut p = DiskParams::default();
        p.cache_segments = segments;
        let mut d: Disk<()> = Disk::new(p);
        let mut now = SimTime::ZERO;
        for i in 0..200u64 {
            now = serve(&mut d, now, i, IoKind::Read);
            now = serve(&mut d, now, 24_000 + i, IoKind::Read);
        }
        now.as_secs_f64() * 1e3 / 400.0
    };
    println!("== ablation: controller cache segments (ms/page, 2 interleaved streams)");
    println!(
        "   1 segment: {:.2} ms   4 segments: {:.2} ms",
        run(1),
        run(4)
    );
    c.bench_function("ablation_cache_segments", |b| {
        b.iter(|| std::hint::black_box(run(1)))
    });
}

fn ablation_commute_move(c: &mut Criterion) {
    // A 2-way join whose only way to flip the (asymmetric) build side is
    // the commute extension.
    let query = two_way();
    let catalog = single_server_placement(&query);
    let sys = SystemConfig::default();
    let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
    let run = |paper_moves_only: bool| -> f64 {
        let mut cfg = OptConfig::fast();
        cfg.paper_moves_only = paper_moves_only;
        let opt = Optimizer::new(&model, Policy::QueryShipping, Objective::ResponseTime, cfg);
        let mut rng = SimRng::seed_from_u64(13);
        opt.optimize(&query, &mut rng).cost
    };
    println!("== ablation: commute move (estimated QS response time)");
    println!(
        "   with commute: {:.4} s   paper moves only: {:.4} s",
        run(false),
        run(true)
    );
    c.bench_function("ablation_commute_move", |b| {
        b.iter(|| std::hint::black_box(run(false)))
    });
}

fn ablation_hybrid_seeding(c: &mut Criterion) {
    // Hybrid optimization quality: the headline "HY <= min(DS, QS)"
    // hinges on pure-policy seeding (see search.rs); this prints all
    // three policies' converged costs on one scenario.
    let query = two_way();
    let mut catalog = single_server_placement(&query);
    csqp_workload::cache_all(&mut catalog, &query, 0.75);
    let sys = SystemConfig::default();
    let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
    println!("== ablation: hybrid search quality (pages sent at 75% cached)");
    for policy in Policy::ALL {
        let opt = Optimizer::new(&model, policy, Objective::Communication, OptConfig::fast());
        let mut rng = SimRng::seed_from_u64(21);
        let cost = opt.optimize(&query, &mut rng).cost;
        println!("   {}: {:.0}", policy.short(), cost);
    }
    let opt = Optimizer::new(
        &model,
        Policy::HybridShipping,
        Objective::Communication,
        OptConfig::fast(),
    );
    c.bench_function("ablation_hybrid_optimize", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(21);
            std::hint::black_box(opt.optimize(&query, &mut rng).cost)
        })
    });
}

fn ablation_min_vs_max_alloc(c: &mut Criterion) {
    // Shapiro's allocation policy is the lever behind Figures 3 vs 5.
    use csqp_catalog::BufAlloc;
    use csqp_experiments::common::Scenario;
    let query = two_way();
    let catalog = single_server_placement(&query);
    let run = |alloc: BufAlloc| -> f64 {
        let mut sys = SystemConfig::default();
        sys.buf_alloc = alloc;
        let scenario = Scenario {
            query: &query,
            catalog: &catalog,
            sys: &sys,
            loads: &[],
        };
        scenario
            .optimize_and_run(
                Policy::QueryShipping,
                Objective::ResponseTime,
                &OptConfig::fast(),
                5,
            )
            .response_secs()
    };
    println!("== ablation: join memory allocation (QS simulated response time)");
    println!(
        "   min: {:.2} s   max: {:.2} s",
        run(BufAlloc::Min),
        run(BufAlloc::Max)
    );
    c.bench_function("ablation_min_vs_max_alloc", |b| {
        b.iter(|| std::hint::black_box(run(BufAlloc::Max)))
    });
}

fn ablation_dp_vs_randomized_compile(c: &mut Criterion) {
    // Compile-time join ordering for 2-step: System-R-style DP vs the
    // randomized 2PO, judged by the surrogate (total intermediate pages).
    use csqp_optimizer::dp::{dp_join_order, intermediate_pages};
    use csqp_optimizer::twostep::{CompileTimeAssumption, TwoStepPlanner};
    use csqp_workload::ten_way_hisel;

    let query = ten_way_hisel();
    let sys = SystemConfig::default();
    let dp_tree = dp_join_order(&query, &sys);
    let dp_cost = intermediate_pages(&dp_tree, &query, &sys);
    let planner = TwoStepPlanner {
        policy: Policy::HybridShipping,
        objective: Objective::ResponseTime,
        config: OptConfig::fast(),
    };
    let mut rng = SimRng::seed_from_u64(77);
    let rnd_plan = planner.compile(
        &query,
        &sys,
        CompileTimeAssumption::FullyDistributed,
        &mut rng,
    );
    // Extract the randomized plan's join tree shape cost via its rel sets.
    fn tree_of(plan: &csqp_core::Plan, id: csqp_core::NodeId) -> Option<csqp_core::JoinTree> {
        use csqp_core::{JoinTree, LogicalOp};
        let n = plan.node(id);
        match n.op {
            LogicalOp::Scan { rel } => Some(JoinTree::leaf(rel)),
            LogicalOp::Select { rel } => {
                let _ = rel;
                tree_of(plan, n.children[0]?)
            }
            LogicalOp::Aggregate { .. } | LogicalOp::Display => tree_of(plan, n.children[0]?),
            LogicalOp::Join => Some(JoinTree::join(
                tree_of(plan, n.children[0]?)?,
                tree_of(plan, n.children[1]?)?,
            )),
        }
    }
    let rnd_tree = tree_of(&rnd_plan, rnd_plan.root()).expect("full tree");
    let rnd_cost = intermediate_pages(&rnd_tree, &query, &sys);
    println!("== ablation: compile-time ordering, HiSel 10-way (intermediate pages)");
    println!("   System-R DP: {dp_cost:.0}   randomized 2PO: {rnd_cost:.0}");
    c.bench_function("ablation_dp_join_order", |b| {
        b.iter(|| std::hint::black_box(dp_join_order(&query, &sys)))
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = ablations;
    config = configured();
    targets = ablation_cache_segments, ablation_commute_move, ablation_hybrid_seeding,
              ablation_min_vs_max_alloc, ablation_dp_vs_randomized_compile
}
criterion_main!(ablations);
