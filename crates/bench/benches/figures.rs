//! One criterion bench target per table/figure of the paper.
//!
//! Each target first *regenerates the artifact* — prints the same series
//! the paper reports (at a reduced repetition count; run the
//! `csqp-experiments` binary for the full-quality numbers) — and then
//! times a representative unit of the work behind it.

// Bench targets get the same panic-on-broken-setup latitude as tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_bench::harness::Criterion;
use csqp_bench::{bench_context, two_way_unit};
use csqp_bench::{criterion_group, criterion_main};
use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_experiments::run_by_id;

/// Regenerate `id` once, printing its table; benches then time `unit`.
fn figure_bench<F: FnMut()>(c: &mut Criterion, id: &str, mut unit: F) {
    let ctx = bench_context();
    let fig = run_by_id(id, &ctx).expect("known experiment id");
    println!("{}", fig.render_table());
    c.bench_function(id, |b| b.iter(&mut unit));
}

fn bench_tables(c: &mut Criterion) {
    figure_bench(c, "table1", || {
        for p in Policy::ALL {
            std::hint::black_box(p.allowed(csqp_core::LogicalOp::Join));
        }
    });
    figure_bench(c, "table2", || {
        std::hint::black_box(csqp_catalog::SystemConfig::default());
    });
    figure_bench(c, "calibration", || {
        std::hint::black_box(csqp_disk::calibrate::measure(
            &csqp_disk::DiskParams::default(),
            500,
            7,
        ));
    });
}

fn bench_two_way_figures(c: &mut Criterion) {
    // Figures 2-5 are all 2-way-join scenarios; each bench times the
    // policy/objective combination that distinguishes the figure.
    figure_bench(c, "fig2", || {
        std::hint::black_box(two_way_unit(
            Policy::HybridShipping,
            Objective::Communication,
            2,
        ));
    });
    figure_bench(c, "fig3", || {
        std::hint::black_box(two_way_unit(
            Policy::QueryShipping,
            Objective::ResponseTime,
            3,
        ));
    });
    figure_bench(c, "fig4", || {
        std::hint::black_box(two_way_unit(
            Policy::DataShipping,
            Objective::ResponseTime,
            4,
        ));
    });
    figure_bench(c, "fig5", || {
        std::hint::black_box(two_way_unit(
            Policy::HybridShipping,
            Objective::ResponseTime,
            5,
        ));
    });
}

fn bench_ten_way_figures(c: &mut Criterion) {
    use csqp_catalog::SystemConfig;
    use csqp_experiments::common::Scenario;
    use csqp_simkernel::rng::SimRng;
    use csqp_workload::{random_placement, ten_way};

    let ctx = bench_context();
    let query = ten_way();
    let sys = SystemConfig::default();

    for (id, policy, objective) in [
        ("fig6", Policy::QueryShipping, Objective::Communication),
        ("fig7", Policy::HybridShipping, Objective::Communication),
        ("fig8", Policy::HybridShipping, Objective::ResponseTime),
    ] {
        let fig = run_by_id(id, &ctx).expect("known experiment id");
        println!("{}", fig.render_table());
        let mut rng = SimRng::seed_from_u64(42);
        let catalog = random_placement(&query, 3, &mut rng);
        let opt = ctx.opt.clone();
        c.bench_function(id, |b| {
            b.iter(|| {
                let scenario = Scenario {
                    query: &query,
                    catalog: &catalog,
                    sys: &sys,
                    loads: &[],
                };
                std::hint::black_box(scenario.optimize_and_run(policy, objective, &opt, 9))
            })
        });
    }
}

fn bench_twostep_figures(c: &mut Criterion) {
    use csqp_catalog::SystemConfig;
    use csqp_experiments::fig09::{cycle_query, paper_static_plan};
    use csqp_optimizer::{explicit_placement, TwoStepPlanner};
    use csqp_simkernel::rng::SimRng;

    for id in ["fig9", "fig10", "fig11"] {
        let ctx = bench_context();
        let fig = run_by_id(id, &ctx).expect("known experiment id");
        println!("{}", fig.render_table());
    }
    // Timed unit: one runtime site-selection pass (the operation 2-step
    // optimization adds to every query execution).
    let query = cycle_query();
    let sys = SystemConfig::default();
    let runtime = explicit_placement(
        2,
        &[
            (csqp_catalog::RelId(1), 1),
            (csqp_catalog::RelId(2), 1),
            (csqp_catalog::RelId(0), 2),
            (csqp_catalog::RelId(3), 2),
        ],
    );
    let planner = TwoStepPlanner {
        policy: Policy::HybridShipping,
        objective: Objective::Communication,
        config: bench_context().opt,
    };
    let compiled = paper_static_plan(&query);
    c.bench_function("two_step_site_selection", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(3);
            std::hint::black_box(planner.site_select(&compiled, &query, &sys, &runtime, &mut rng))
        })
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = figures;
    config = configured();
    targets = bench_tables, bench_two_way_figures, bench_ten_way_figures, bench_twostep_figures
}
criterion_main!(figures);
