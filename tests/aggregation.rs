//! The aggregate-operator extension (paper footnote 4) end-to-end:
//! structural rules, policy placement, engine semantics, and the
//! communication win of aggregating at the producer.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{RelId, SiteId, SystemConfig};
use csqp::core::{bind, Annotation, BindContext, JoinTree, LogicalOp, Policy};
use csqp::cost::{CostModel, Objective};
use csqp::engine::ExecutionBuilder;
use csqp::optimizer::{OptConfig, Optimizer};
use csqp::simkernel::rng::SimRng;
use csqp::workload::{single_server_placement, two_way};

fn agg_query(groups: u64) -> csqp::catalog::QuerySpec {
    two_way().with_aggregate(groups)
}

fn plan_with(
    query: &csqp::catalog::QuerySpec,
    jann: Annotation,
    sann: Annotation,
) -> csqp::core::Plan {
    JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(query, jann, sann)
}

#[test]
fn builder_inserts_aggregate_under_display() {
    let q = agg_query(100);
    let plan = plan_with(&q, Annotation::InnerRel, Annotation::PrimaryCopy);
    plan.validate_structure(&q).unwrap();
    let root_child = plan.node(plan.root()).children[0].unwrap();
    assert!(matches!(
        plan.node(root_child).op,
        LogicalOp::Aggregate { groups: 100 }
    ));
    assert!(plan.render_compact().contains("(agg 100:prod"));
}

#[test]
fn structure_validation_enforces_aggregate_consistency() {
    // Plan without the aggregate for an aggregating query: rejected.
    let q = agg_query(100);
    let plain = plan_with(&two_way(), Annotation::Consumer, Annotation::Client);
    assert!(plain.validate_structure(&q).is_err());
    // Aggregating plan for a plain query: rejected.
    let agg_plan = plan_with(&q, Annotation::Consumer, Annotation::Client);
    assert!(agg_plan.validate_structure(&two_way()).is_err());
}

#[test]
fn policies_restrict_aggregate_like_select() {
    let agg = LogicalOp::Aggregate { groups: 10 };
    assert_eq!(Policy::DataShipping.allowed(agg), &[Annotation::Consumer]);
    assert_eq!(Policy::QueryShipping.allowed(agg), &[Annotation::Producer]);
    assert_eq!(
        Policy::HybridShipping.allowed(agg),
        &[Annotation::Consumer, Annotation::Producer]
    );
}

#[test]
fn engine_produces_exactly_the_groups() {
    let q = agg_query(100);
    let catalog = single_server_placement(&q);
    let sys = SystemConfig::default();
    let plan = plan_with(&q, Annotation::InnerRel, Annotation::PrimaryCopy);
    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();
    let m = ExecutionBuilder::new(&q, &catalog, &sys).execute(&bound);
    assert_eq!(m.result_tuples, 100);
    // Aggregate at the producer (server): only 3 pages cross the wire.
    assert_eq!(m.pages_sent, 3);
}

#[test]
fn aggregate_at_consumer_ships_the_full_result() {
    let q = agg_query(100);
    let catalog = single_server_placement(&q);
    let sys = SystemConfig::default();
    let mut plan = plan_with(&q, Annotation::InnerRel, Annotation::PrimaryCopy);
    // Flip the aggregate to consumer: it follows the display to the
    // client, so the whole 250-page join result crosses the wire first.
    let agg = plan.node(plan.root()).children[0].unwrap();
    plan.node_mut(agg).ann = Annotation::Consumer;
    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();
    assert!(bound.site(agg).is_client());
    let m = ExecutionBuilder::new(&q, &catalog, &sys).execute(&bound);
    assert_eq!(m.result_tuples, 100);
    assert_eq!(m.pages_sent, 250);
}

#[test]
fn optimizer_pushes_aggregate_to_the_producer_for_communication() {
    let q = agg_query(50);
    let catalog = single_server_placement(&q);
    let sys = SystemConfig::default();
    let model = CostModel::new(&sys, &catalog, &q, SiteId::CLIENT);
    let opt = Optimizer::new(
        &model,
        Policy::HybridShipping,
        Objective::Communication,
        OptConfig::fast(),
    );
    let mut rng = SimRng::seed_from_u64(4);
    let plan = opt.optimize(&q, &mut rng).plan;
    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();
    let m = ExecutionBuilder::new(&q, &catalog, &sys).execute(&bound);
    // 50 groups = 2 pages: aggregation (and the join) stay at the server.
    assert_eq!(m.pages_sent, 2, "plan: {}", bound.render());
    assert_eq!(m.result_tuples, 50);
}

#[test]
fn cost_model_matches_engine_for_aggregates() {
    let q = agg_query(100);
    let catalog = single_server_placement(&q);
    let sys = SystemConfig::default();
    let model = CostModel::new(&sys, &catalog, &q, SiteId::CLIENT);
    for ann in [Annotation::Producer, Annotation::Consumer] {
        let mut plan = plan_with(&q, Annotation::InnerRel, Annotation::PrimaryCopy);
        let agg = plan.node(plan.root()).children[0].unwrap();
        plan.node_mut(agg).ann = ann;
        let bound = bind(
            &plan,
            BindContext {
                catalog: &catalog,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        let est = model.evaluate_bound(&bound, Objective::Communication);
        let m = ExecutionBuilder::new(&q, &catalog, &sys).execute(&bound);
        assert_eq!(est as u64, m.pages_sent, "annotation {ann}");
    }
}
