//! Property-based integration tests: random plans and random scenarios
//! through the whole stack (plan → policy check → bind → cost → engine).

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{Catalog, Estimator, SiteId, SystemConfig};
use csqp::core::{bind, is_well_formed, BindContext, Policy};
use csqp::engine::ExecutionBuilder;
use csqp::optimizer::random_plan;
use csqp::simkernel::rng::SimRng;
use csqp::workload::{chain_query, star_query, MODERATE_SEL};
use proptest::prelude::*;

fn placement(query: &csqp::catalog::QuerySpec, servers: u32, seed: u64) -> Catalog {
    let mut rng = SimRng::seed_from_u64(seed);
    csqp::workload::random_placement(query, servers, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random hybrid plan over a chain query binds, executes, ships a
    /// non-negative page count, and displays exactly the estimated result
    /// cardinality.
    #[test]
    fn random_hybrid_plans_execute_correctly(
        n in 2u32..6,
        servers in 1u32..3,
        seed in 0u64..1000,
        cached in 0u8..3,
    ) {
        let query = chain_query(n, MODERATE_SEL);
        let servers = servers.min(n);
        let mut catalog = placement(&query, servers, seed);
        csqp::workload::cache_all(&mut catalog, &query, cached as f64 * 0.5);
        let sys = SystemConfig::default();

        let mut rng = SimRng::seed_from_u64(seed);
        let plan = random_plan(&query, Policy::HybridShipping, &mut rng);
        prop_assert!(is_well_formed(&plan));
        prop_assert_eq!(plan.validate_structure(&query), Ok(()));
        prop_assert_eq!(Policy::HybridShipping.validate(&plan), Ok(()));

        let bound = bind(
            &plan,
            BindContext { catalog: &catalog, query_site: SiteId::CLIENT },
        ).unwrap();
        let m = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);

        let est = Estimator::new(&query, &sys);
        let expect = est.tuples_int(query.all_rels());
        let diff = (m.result_tuples as i64 - expect as i64).abs();
        prop_assert!(diff <= 2, "result {} vs estimate {expect}", m.result_tuples);
        prop_assert!(m.response_time.as_nanos() > 0);
    }

    /// Data-shipping plans never use server CPU or disks beyond the scans
    /// they fault from, regardless of the query shape.
    #[test]
    fn ds_plans_only_fault_from_servers(
        n in 2u32..6,
        seed in 0u64..500,
    ) {
        let query = star_query(n, MODERATE_SEL);
        let catalog = placement(&query, 1, seed);
        let sys = SystemConfig::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let plan = random_plan(&query, Policy::DataShipping, &mut rng);
        let bound = bind(
            &plan,
            BindContext { catalog: &catalog, query_site: SiteId::CLIENT },
        ).unwrap();
        let m = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);
        // Server disk only reads base pages — never writes (no join temp).
        prop_assert_eq!(m.disk[1].writes, 0);
        prop_assert_eq!(m.disk[1].reads, 250 * n as u64);
        // Everything was faulted: pages sent = all base pages.
        prop_assert_eq!(m.pages_sent, 250 * n as u64);
    }

    /// Query-shipping never touches the client disk and ships exactly the
    /// result (single server, no inter-server transfers possible).
    #[test]
    fn qs_single_server_ships_result_only(
        n in 2u32..6,
        seed in 0u64..500,
    ) {
        let query = chain_query(n, MODERATE_SEL);
        let catalog = placement(&query, 1, seed);
        let sys = SystemConfig::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let plan = random_plan(&query, Policy::QueryShipping, &mut rng);
        let bound = bind(
            &plan,
            BindContext { catalog: &catalog, query_site: SiteId::CLIENT },
        ).unwrap();
        let m = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);
        prop_assert_eq!(m.disk[0].reads + m.disk[0].writes, 0);
        prop_assert_eq!(m.pages_sent, 250);
    }

    /// Binding commutes with migration: rebinding the same annotated plan
    /// under a different placement moves primary-copy scans with their
    /// relations.
    #[test]
    fn rebinding_follows_migration(
        n in 2u32..6,
        seed in 0u64..500,
    ) {
        let query = chain_query(n, MODERATE_SEL);
        let before = placement(&query, 2.min(n), seed);
        let after = placement(&query, 2.min(n), seed + 17);
        let mut rng = SimRng::seed_from_u64(seed);
        let plan = random_plan(&query, Policy::QueryShipping, &mut rng);
        let b1 = bind(&plan, BindContext { catalog: &before, query_site: SiteId::CLIENT }).unwrap();
        let b2 = bind(&plan, BindContext { catalog: &after, query_site: SiteId::CLIENT }).unwrap();
        for scan in plan.scan_nodes() {
            let csqp::core::LogicalOp::Scan { rel } = plan.node(scan).op else { unreachable!() };
            prop_assert_eq!(b1.site(scan), before.primary_site(rel));
            prop_assert_eq!(b2.site(scan), after.primary_site(rel));
        }
    }
}
