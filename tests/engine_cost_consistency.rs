//! Cross-crate consistency: the analytic cost model and the detailed
//! simulator must agree wherever the model has no approximation to make
//! (page counts), and stay within sane bounds where it does (time).

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{BufAlloc, Catalog, RelId, SiteId, SystemConfig};
use csqp::core::{bind, Annotation, BindContext, JoinTree, Plan};
use csqp::cost::{CostModel, Objective};
use csqp::engine::ExecutionBuilder;
use csqp::workload::{cache_all, chain_query, single_server_placement, MODERATE_SEL};

fn canonical_plan(query: &csqp::catalog::QuerySpec, jann: Annotation, sann: Annotation) -> Plan {
    let order: Vec<RelId> = (0..query.num_relations() as u32).map(RelId).collect();
    JoinTree::left_deep(&order).into_plan(query, jann, sann)
}

fn run_both(
    query: &csqp::catalog::QuerySpec,
    catalog: &Catalog,
    sys: &SystemConfig,
    plan: &Plan,
) -> (f64, u64, f64, f64) {
    let model = CostModel::new(sys, catalog, query, SiteId::CLIENT);
    let bound = bind(
        plan,
        BindContext {
            catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();
    let est_pages = model.evaluate_bound(&bound, Objective::Communication);
    let est_rt = model.evaluate_bound(&bound, Objective::ResponseTime);
    let m = ExecutionBuilder::new(query, catalog, sys).execute(&bound);
    (est_pages, m.pages_sent, est_rt, m.response_secs())
}

/// Pages sent: model and simulator agree exactly for canonical DS and QS
/// plans across cache levels and chain lengths.
#[test]
fn pages_sent_model_equals_simulation() {
    for n in [2u32, 3, 5] {
        let query = chain_query(n, MODERATE_SEL);
        for cached in [0.0, 0.3, 1.0] {
            let mut catalog = single_server_placement(&query);
            cache_all(&mut catalog, &query, cached);
            let sys = SystemConfig::default();
            for (jann, sann) in [
                (Annotation::Consumer, Annotation::Client),
                (Annotation::InnerRel, Annotation::PrimaryCopy),
            ] {
                let plan = canonical_plan(&query, jann, sann);
                let (est, sim, _, _) = run_both(&query, &catalog, &sys, &plan);
                assert_eq!(
                    est as u64, sim,
                    "n={n} cached={cached} plan={plan}: est {est} sim {sim}"
                );
            }
        }
    }
}

/// Response time: the model's full-overlap optimism means it may
/// under-estimate, but for canonical plans it stays within a factor of
/// two of the simulator and never over-estimates by more than 50%.
#[test]
fn response_time_model_brackets_simulation() {
    for alloc in [BufAlloc::Min, BufAlloc::Max] {
        for n in [2u32, 4] {
            let query = chain_query(n, MODERATE_SEL);
            let catalog = single_server_placement(&query);
            let mut sys = SystemConfig::default();
            sys.buf_alloc = alloc;
            for (jann, sann) in [
                (Annotation::Consumer, Annotation::Client),
                (Annotation::InnerRel, Annotation::PrimaryCopy),
            ] {
                let plan = canonical_plan(&query, jann, sann);
                let (_, _, est, sim) = run_both(&query, &catalog, &sys, &plan);
                assert!(
                    est > 0.4 * sim && est < 1.5 * sim,
                    "{alloc:?} n={n} plan={plan}: est {est:.2}s vs sim {sim:.2}s"
                );
            }
        }
    }
}

/// The simulator is bit-deterministic for a given seed, and the load
/// generator's seed only matters when a load exists.
#[test]
fn simulation_determinism() {
    let query = chain_query(3, MODERATE_SEL);
    let catalog = single_server_placement(&query);
    let sys = SystemConfig::default();
    let plan = canonical_plan(&query, Annotation::InnerRel, Annotation::PrimaryCopy);
    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();

    let m1 = ExecutionBuilder::new(&query, &catalog, &sys)
        .with_seed(1)
        .execute(&bound);
    let m2 = ExecutionBuilder::new(&query, &catalog, &sys)
        .with_seed(2)
        .execute(&bound);
    assert_eq!(
        m1.response_time, m2.response_time,
        "no load -> seed-independent"
    );

    let l1 = ExecutionBuilder::new(&query, &catalog, &sys)
        .with_seed(1)
        .with_load(SiteId::server(1), 50.0)
        .execute(&bound);
    let l1b = ExecutionBuilder::new(&query, &catalog, &sys)
        .with_seed(1)
        .with_load(SiteId::server(1), 50.0)
        .execute(&bound);
    let l2 = ExecutionBuilder::new(&query, &catalog, &sys)
        .with_seed(2)
        .with_load(SiteId::server(1), 50.0)
        .execute(&bound);
    assert_eq!(l1.response_time, l1b.response_time, "same seed, same run");
    assert_ne!(l1.response_time, l2.response_time, "load varies by seed");
    assert!(
        l1.response_secs() > m1.response_secs(),
        "load slows the query"
    );
}

/// Result cardinality is invariant across policies, placements and
/// allocations: every execution displays exactly the estimated result.
#[test]
fn result_cardinality_invariant() {
    let query = chain_query(4, MODERATE_SEL);
    for servers in [1u32, 2, 4] {
        let mut catalog = Catalog::new(servers);
        for i in 0..4 {
            catalog.place(RelId(i), SiteId::server(1 + i % servers));
        }
        for alloc in [BufAlloc::Min, BufAlloc::Max] {
            let mut sys = SystemConfig::default();
            sys.buf_alloc = alloc;
            for (jann, sann) in [
                (Annotation::Consumer, Annotation::Client),
                (Annotation::InnerRel, Annotation::PrimaryCopy),
                (Annotation::OuterRel, Annotation::PrimaryCopy),
            ] {
                let plan = canonical_plan(&query, jann, sann);
                let bound = bind(
                    &plan,
                    BindContext {
                        catalog: &catalog,
                        query_site: SiteId::CLIENT,
                    },
                )
                .unwrap();
                let m = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);
                let diff = (m.result_tuples as i64 - 10_000).abs();
                assert!(
                    diff <= 2,
                    "{servers} servers {alloc:?} {plan}: {} tuples",
                    m.result_tuples
                );
            }
        }
    }
}
