//! End-to-end tests of the paper's headline claims, driven through the
//! public facade (`csqp::…`) the way a downstream user would.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{RelId, SiteId, SystemConfig};
use csqp::core::{bind, Annotation, BindContext, JoinTree, Policy};
use csqp::cost::{CostModel, Objective};
use csqp::engine::ExecutionBuilder;
use csqp::optimizer::{OptConfig, Optimizer};
use csqp::simkernel::rng::SimRng;
use csqp::workload::{cache_all, single_server_placement, two_way};

fn optimize_and_measure(
    policy: Policy,
    objective: Objective,
    cached: f64,
    seed: u64,
) -> (u64, f64) {
    let query = two_way();
    let mut catalog = single_server_placement(&query);
    cache_all(&mut catalog, &query, cached);
    let sys = SystemConfig::default();
    let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
    let opt = Optimizer::new(&model, policy, objective, OptConfig::fast());
    let mut rng = SimRng::seed_from_u64(seed);
    let plan = opt.optimize(&query, &mut rng).plan;
    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();
    let m = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);
    (m.pages_sent, m.response_secs())
}

/// §2.2.3 / abstract: "Hybrid-shipping is shown to at least match the
/// best of the two 'pure' policies" — communication, across the whole
/// caching sweep.
#[test]
fn hybrid_matches_best_pure_policy_on_communication() {
    for cached in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let (ds, _) =
            optimize_and_measure(Policy::DataShipping, Objective::Communication, cached, 1);
        let (qs, _) =
            optimize_and_measure(Policy::QueryShipping, Objective::Communication, cached, 2);
        let (hy, _) =
            optimize_and_measure(Policy::HybridShipping, Objective::Communication, cached, 3);
        assert!(
            hy <= ds.min(qs),
            "cached {cached}: HY {hy} vs DS {ds} / QS {qs}"
        );
    }
}

/// §2.2: the pure policies bound to their prescribed sites.
#[test]
fn pure_policies_place_operators_as_defined() {
    let query = two_way();
    let catalog = single_server_placement(&query);
    let sys = SystemConfig::default();
    let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
    for (policy, at_client) in [(Policy::DataShipping, 4), (Policy::QueryShipping, 1)] {
        let opt = Optimizer::new(&model, policy, Objective::ResponseTime, OptConfig::fast());
        let mut rng = SimRng::seed_from_u64(5);
        let plan = opt.optimize(&query, &mut rng).plan;
        policy.validate(&plan).unwrap();
        let bound = bind(
            &plan,
            BindContext {
                catalog: &catalog,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        // DS: display + join + 2 scans at the client; QS: only display.
        assert_eq!(bound.ops_at_client(), at_client, "{policy}");
    }
}

/// §2.2.3: "hybrid-shipping does not preclude a relation from being
/// shipped from the client to a server (this is precluded in both data
/// and query-shipping)" — build such a plan and execute it.
#[test]
fn hybrid_can_ship_cached_data_from_client_to_server() {
    let query = two_way();
    let mut catalog = single_server_placement(&query);
    // R1 fully cached at the client; R0 only at the server.
    catalog.set_cached_fraction(RelId(1), 1.0);
    let sys = SystemConfig::default();

    // Scan R1 at the client (from cache), ship it INTO server 1 where the
    // join runs against R0, result back to the client.
    let mut plan = JoinTree::join(JoinTree::leaf(RelId(0)), JoinTree::leaf(RelId(1))).into_plan(
        &query,
        Annotation::InnerRel,
        Annotation::PrimaryCopy,
    );
    let scan_r1 = plan.scan_nodes()[1];
    plan.node_mut(scan_r1).ann = Annotation::Client;
    Policy::HybridShipping.validate(&plan).unwrap();
    assert!(Policy::DataShipping.validate(&plan).is_err());
    assert!(Policy::QueryShipping.validate(&plan).is_err());

    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();
    assert_eq!(bound.site(plan.join_nodes()[0]), SiteId::server(1));
    assert!(bound.site(scan_r1).is_client());

    let m = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);
    // R1 (250 pages) client -> server, result (250 pages) server -> client.
    assert_eq!(m.pages_sent, 500);
    assert_eq!(m.disk[0].reads, 250, "client reads its cached copy");
    assert_eq!(m.result_tuples, 10_000);
}

/// §4.2.2 narrative: under heavy server load the hybrid optimizer moves
/// work to the client; with an idle server and no cache it stays on the
/// server side.
#[test]
fn hybrid_adapts_to_server_load() {
    let query = two_way();
    let mut catalog = single_server_placement(&query);
    cache_all(&mut catalog, &query, 1.0);
    let sys = SystemConfig::default();

    // Heavily loaded server, fully cached client: HY must not touch the
    // server at all.
    let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT)
        .with_disk_load(SiteId::server(1), 0.9);
    let opt = Optimizer::new(
        &model,
        Policy::HybridShipping,
        Objective::ResponseTime,
        OptConfig::fast(),
    );
    let mut rng = SimRng::seed_from_u64(8);
    let plan = opt.optimize(&query, &mut rng).plan;
    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();
    // Run without the load generator so the server disk counter reflects
    // only the query's own I/O.
    let m = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);
    assert_eq!(
        m.disk[1].reads,
        0,
        "loaded server should be avoided entirely: {}",
        bound.render()
    );
}

/// The tradeoffs are not chain-specific ("the effects described in
/// Section 4 were seen, in varying degrees, for all query types we
/// investigated", §3.3): on a star join too, hybrid communication
/// tracks the best pure policy.
#[test]
fn star_join_hybrid_matches_best_pure() {
    use csqp::workload::{random_placement, star_query, MODERATE_SEL};
    let query = star_query(5, MODERATE_SEL);
    let mut rng = SimRng::seed_from_u64(23);
    let catalog = random_placement(&query, 2, &mut rng);
    let sys = SystemConfig::default();
    let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
    let mut results = Vec::new();
    for policy in Policy::ALL {
        let opt = Optimizer::new(&model, policy, Objective::Communication, OptConfig::fast());
        let plan = opt.optimize(&query, &mut rng).plan;
        let bound = bind(
            &plan,
            BindContext {
                catalog: &catalog,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        results.push(
            ExecutionBuilder::new(&query, &catalog, &sys)
                .execute(&bound)
                .pages_sent,
        );
    }
    let (ds, qs, hy) = (results[0], results[1], results[2]);
    assert!(
        hy <= ds.min(qs) + 25,
        "star join: HY {hy} vs DS {ds} / QS {qs}"
    );
}

/// SPJ with selective predicates: pushing the select to the producer
/// shrinks communication; the optimized plan must exploit it.
#[test]
fn spj_selections_shrink_communication() {
    use csqp::workload::spj_query;
    let query = spj_query(3, csqp::workload::MODERATE_SEL, 0.1, 1);
    let catalog = {
        let mut c = csqp::catalog::Catalog::new(1);
        for r in &query.relations {
            c.place(r.id, SiteId::server(1));
        }
        c
    };
    let sys = SystemConfig::default();
    let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
    let opt = Optimizer::new(
        &model,
        Policy::HybridShipping,
        Objective::Communication,
        OptConfig::fast(),
    );
    let mut rng = SimRng::seed_from_u64(19);
    let plan = opt.optimize(&query, &mut rng).plan;
    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();
    let m = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);
    // Three 10% selections: result is 10 tuples -> 1 page.
    assert_eq!(m.result_tuples, 10);
    assert_eq!(m.pages_sent, 1, "plan: {}", bound.render());
}
