//! The per-operator wait breakdown must tell the paper's §4 story about
//! *where* time goes under each policy.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{BufAlloc, RelId, SiteId, SystemConfig};
use csqp::core::{bind, Annotation, BindContext, JoinTree};
use csqp::engine::{ExecutionBuilder, ProcReport};
use csqp::workload::{single_server_placement, two_way};

fn run(alloc: BufAlloc, jann: Annotation, sann: Annotation) -> Vec<ProcReport> {
    let q = two_way();
    let cat = single_server_placement(&q);
    let mut sys = SystemConfig::default();
    sys.buf_alloc = alloc;
    let plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(&q, jann, sann);
    let bound = bind(
        &plan,
        BindContext {
            catalog: &cat,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();
    ExecutionBuilder::new(&q, &cat, &sys)
        .execute(&bound)
        .operators
}

fn find<'a>(ops: &'a [ProcReport], needle: &str) -> &'a ProcReport {
    ops.iter()
        .find(|o| o.label.contains(needle))
        .unwrap_or_else(|| panic!("no operator matching '{needle}'"))
}

/// §4.2.2: "With minimum allocation, the cost of executing the
/// hybrid-hash joins is the largest contributing factor to the response
/// time" — the QS join's dominant wait must be the disk.
#[test]
fn min_alloc_qs_join_is_disk_bound() {
    let ops = run(BufAlloc::Min, Annotation::InnerRel, Annotation::PrimaryCopy);
    let join = find(&ops, "join@");
    let w = join.waits;
    let disk = w.disk + w.drain;
    assert!(
        disk > w.cpu && disk > w.wire,
        "join should wait on disk, not {w:?}"
    );
    assert!(
        disk.as_secs_f64() > 1.0,
        "substantial spill I/O wait: {w:?}"
    );
}

/// With maximum allocation the join touches no disk at all; its time is
/// spent waiting for input pages from the scans.
#[test]
fn max_alloc_qs_join_waits_for_input() {
    let ops = run(BufAlloc::Max, Annotation::InnerRel, Annotation::PrimaryCopy);
    let join = find(&ops, "join@");
    let w = join.waits;
    assert_eq!(w.disk.as_nanos(), 0);
    assert_eq!(w.drain.as_nanos(), 0);
    assert!(
        w.input > w.cpu && w.input > w.wire,
        "max-alloc join is input-bound: {w:?}"
    );
}

/// A data-shipping scan of uncached data spends its life in the fault
/// RPC: disk (server read) + wire legs dominate.
#[test]
fn ds_scan_waits_on_fault_round_trips() {
    let ops = run(BufAlloc::Max, Annotation::Consumer, Annotation::Client);
    let scan = find(&ops, "scan R0");
    let w = scan.waits;
    let rpc = w.disk + w.wire + w.cpu;
    assert!(
        rpc.as_secs_f64() > 0.5,
        "faulting scan must spend real time in the RPC: {w:?}"
    );
    // The scan is never starved for input (it has none) and barely
    // back-pressured (the client join keeps up).
    assert_eq!(w.input.as_nanos(), 0);
}

/// The display of a query-shipping plan waits for input (the result
/// stream), nothing else.
#[test]
fn display_waits_for_results() {
    let ops = run(BufAlloc::Max, Annotation::InnerRel, Annotation::PrimaryCopy);
    let display = find(&ops, "display@");
    let w = display.waits;
    assert!(w.input.as_secs_f64() > 1.0, "{w:?}");
    assert_eq!(w.disk.as_nanos(), 0);
    assert_eq!(w.emit.as_nanos(), 0);
}
