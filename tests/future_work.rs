//! Tests for the paper's §7 future-work extensions implemented here:
//! concurrent multi-query execution and navigation-based access.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{RelId, SiteId, SystemConfig};
use csqp::core::{bind, Annotation, BindContext, JoinTree};
use csqp::engine::ExecutionBuilder;
use csqp::workload::{single_server_placement, two_way};

fn bound(
    q: &csqp::catalog::QuerySpec,
    cat: &csqp::catalog::Catalog,
    jann: Annotation,
    sann: Annotation,
) -> csqp::core::BoundPlan {
    let plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(q, jann, sann);
    bind(
        &plan,
        BindContext {
            catalog: cat,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap()
}

#[test]
fn concurrent_queries_share_resources_and_slow_down() {
    let q = two_way();
    let cat = single_server_placement(&q);
    let mut sys = SystemConfig::default();
    sys.buf_alloc = csqp::catalog::BufAlloc::Max;
    let qs = bound(&q, &cat, Annotation::InnerRel, Annotation::PrimaryCopy);

    let solo = ExecutionBuilder::new(&q, &cat, &sys).execute(&qs);
    let duo = ExecutionBuilder::new(&q, &cat, &sys).execute_many(&[qs.clone(), qs.clone()]);

    assert_eq!(duo.per_query.len(), 2);
    for out in &duo.per_query {
        assert_eq!(out.result_tuples, 10_000);
        // Two identical queries on one server disk: each must take
        // noticeably longer than running alone…
        assert!(
            out.response_time.as_secs_f64() > 1.3 * solo.response_secs(),
            "shared disk must slow both: {} vs solo {}",
            out.response_time,
            solo.response_time
        );
        // …but far less than a fully serial schedule would imply for the
        // *makespan* only; individual queries can't beat solo.
        assert!(out.response_time.as_secs_f64() >= solo.response_secs());
    }
    // Combined traffic doubles.
    assert_eq!(duo.pages_sent, 2 * solo.pages_sent);
    // Makespan is at most the serial sum (concurrency must not be worse
    // than running one after the other, modulo interference effects).
    assert!(
        duo.makespan.as_secs_f64() < 2.4 * solo.response_secs(),
        "makespan {} vs serial {}",
        duo.makespan,
        2.0 * solo.response_secs()
    );
}

#[test]
fn mixed_policies_can_run_concurrently() {
    let q = two_way();
    let mut cat = single_server_placement(&q);
    cat.set_cached_fraction(RelId(0), 1.0);
    cat.set_cached_fraction(RelId(1), 1.0);
    let mut sys = SystemConfig::default();
    sys.buf_alloc = csqp::catalog::BufAlloc::Max;
    // One DS query (all client, fully cached) + one QS query (all
    // server): they barely share resources, so each should run close to
    // its solo time.
    let ds = bound(&q, &cat, Annotation::Consumer, Annotation::Client);
    let qs = bound(&q, &cat, Annotation::InnerRel, Annotation::PrimaryCopy);
    let solo_ds = ExecutionBuilder::new(&q, &cat, &sys).execute(&ds);
    let solo_qs = ExecutionBuilder::new(&q, &cat, &sys).execute(&qs);
    let duo = ExecutionBuilder::new(&q, &cat, &sys).execute_many(&[ds, qs]);
    assert!(
        duo.per_query[0].response_time.as_secs_f64() < 1.25 * solo_ds.response_secs(),
        "DS mostly undisturbed: {} vs {}",
        duo.per_query[0].response_time,
        solo_ds.response_time
    );
    assert!(
        duo.per_query[1].response_time.as_secs_f64() < 1.25 * solo_qs.response_secs(),
        "QS mostly undisturbed: {} vs {}",
        duo.per_query[1].response_time,
        solo_qs.response_time
    );
}

#[test]
fn navigation_benefits_from_caching() {
    let q = two_way();
    let sys = SystemConfig::default();
    let steps = 500;

    let cat0 = single_server_placement(&q);
    let cold = ExecutionBuilder::new(&q, &cat0, &sys)
        .with_seed(5)
        .navigate(RelId(0), steps, 0.8);

    let mut cat1 = single_server_placement(&q);
    cat1.set_cached_fraction(RelId(0), 1.0);
    let warm = ExecutionBuilder::new(&q, &cat1, &sys)
        .with_seed(5)
        .navigate(RelId(0), steps, 0.8);

    // Cold navigation faults every step over the wire.
    assert_eq!(cold.pages_sent, steps);
    assert_eq!(cold.control_msgs, steps);
    // Warm navigation never touches the network or the server.
    assert_eq!(warm.pages_sent, 0);
    assert_eq!(warm.disk[1].reads, 0);
    assert!(
        warm.response_secs() < 0.7 * cold.response_secs(),
        "cache must pay off: warm {} vs cold {}",
        warm.response_secs(),
        cold.response_secs()
    );
}

#[test]
fn navigation_locality_reduces_cost() {
    let q = two_way();
    let mut cat = single_server_placement(&q);
    cat.set_cached_fraction(RelId(0), 1.0);
    let sys = SystemConfig::default();
    let clustered = ExecutionBuilder::new(&q, &cat, &sys)
        .with_seed(9)
        .navigate(RelId(0), 800, 1.0);
    let chasing = ExecutionBuilder::new(&q, &cat, &sys)
        .with_seed(9)
        .navigate(RelId(0), 800, 0.0);
    assert!(
        clustered.response_secs() < 0.6 * chasing.response_secs(),
        "sequential references should be much cheaper: {} vs {}",
        clustered.response_secs(),
        chasing.response_secs()
    );
}
